// Differential replica-chaos tier (src/shard/replica_set.*): every test
// arms a deterministic fault plan against the replication layer — a dead
// replica, a replica killed mid-run, an injected-slow replica under hedged
// reads, transient write drops, a wall-clock (`at_ms=`) triggered kill —
// and requires the delivered results to be byte-identical to a healthy
// single-replica oracle over the same workload: replica faults may cost
// latency, never correctness. The health suite pins the exact
// quarantine → probe → recover → healthy transition sequence, and the
// reshard suite covers (N shards, R replicas) → (M, R') layout changes
// (persistence round trip and live under traffic) plus truncated/corrupt
// manifest error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/inject/fault.h"
#include "src/obs/metrics.h"
#include "src/shard/replica_set.h"
#include "src/shard/sharded_tagmatch.h"
#include "src/workload/tags.h"
#include "tests/test_seed.h"

namespace tagmatch {
namespace {

using Key = Matcher::Key;
using inject::FaultInjector;
using inject::FaultPlan;
using inject::FaultSite;
using shard::ReplicaHealth;
using shard::ReplicaSet;
using shard::ShardedConfig;
using shard::ShardedTagMatch;
using workload::TagId;

TagMatchConfig engine_config() {
  TagMatchConfig c;
  c.num_threads = 2;
  c.num_gpus = 1;
  c.streams_per_gpu = 2;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 128ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 16;
  c.max_partition_size = 32;
  return c;
}

ShardedConfig replicated_config(unsigned shards, unsigned replicas,
                                std::chrono::milliseconds hedge = std::chrono::milliseconds(0)) {
  ShardedConfig c;
  c.num_shards = shards;
  c.num_replicas = replicas;
  c.hedge_delay = hedge;
  c.shard = engine_config();
  return c;
}

BitVector192 random_filter(Rng& rng, uint32_t universe, unsigned max_tags) {
  std::vector<TagId> tags;
  unsigned n = 1 + static_cast<unsigned>(rng.below(max_tags));
  for (unsigned i = 0; i < n; ++i) {
    tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(universe))));
  }
  return workload::encode_tags(tags).bits();
}

struct Workload {
  std::vector<std::pair<BitVector192, Key>> entries;
  std::vector<BitVector192> queries;

  explicit Workload(uint64_t seed, int n_entries = 250, int n_queries = 40) {
    Rng rng(seed);
    const uint32_t universe = 120;
    for (int i = 0; i < n_entries; ++i) {
      entries.emplace_back(random_filter(rng, universe, 3), static_cast<Key>(rng.below(60)));
    }
    for (int i = 0; i < n_queries; ++i) {
      BitVector192 q = random_filter(rng, universe, 6);
      q |= entries[rng.below(entries.size())].first;  // Guarantee some hits.
      queries.push_back(q);
    }
  }
};

const Workload& shared_workload() {
  static Workload w(test::test_seed(9001));
  return w;
}

std::vector<Key> sorted(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Runs the workload through a fresh router and returns per-query sorted key
// multisets. `mid_run` (optional) is invoked once after half the queries —
// the chaos hook for mid-gather kills.
std::vector<std::vector<Key>> run_workload(
    ShardedConfig config, const Workload& w,
    const std::function<void(ShardedTagMatch&)>& mid_run = nullptr,
    ShardedTagMatch::ShardStats* stats_out = nullptr) {
  ShardedTagMatch router(std::move(config));
  for (const auto& [f, k] : w.entries) {
    router.add_set(BloomFilter192(f), k);
  }
  router.consolidate();
  std::vector<std::vector<Key>> out;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    if (mid_run && i == w.queries.size() / 2) {
      mid_run(router);
    }
    out.push_back(sorted(router.match(BloomFilter192(w.queries[i]))));
  }
  if (stats_out != nullptr) {
    *stats_out = router.shard_stats();
  }
  return out;
}

// Healthy single-replica oracle, one per suite run.
const std::vector<std::vector<Key>>& oracle() {
  static std::vector<std::vector<Key>> o =
      run_workload(replicated_config(2, 1), shared_workload());
  return o;
}

void expect_oracle_identical(ShardedConfig config, const std::string& spec,
                             const std::function<void(ShardedTagMatch&)>& mid_run = nullptr,
                             ShardedTagMatch::ShardStats* stats_out = nullptr) {
  SCOPED_TRACE("fault plan: " + (spec.empty() ? std::string("<none>") : spec));
  TAGMATCH_SEED_TRACE(test::test_seed(9001));
  if (!spec.empty()) {
    auto plan = FaultPlan::parse(spec);
    ASSERT_TRUE(plan.has_value()) << spec;
    config.shard.fault_injector = std::make_shared<FaultInjector>(*plan);
  }
  auto got = run_workload(std::move(config), shared_workload(), mid_run, stats_out);
  ASSERT_EQ(got.size(), oracle().size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], oracle()[i]) << "query " << i << " diverged from the healthy oracle";
  }
}

// ---------------------------------------------------------------------------
// Fault-plan grammar: the `replica` site and the `at_ms=` wall-clock key.

TEST(ReplicaChaos, FaultSpecParsesReplicaSiteAndAtMs) {
  auto plan = FaultPlan::parse("replica:dev=1,at_ms=50,count=0;h2d:after=5,count=2");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->rules.size(), 2u);
  EXPECT_EQ(plan->rules[0].site, FaultSite::kReplica);
  EXPECT_EQ(plan->rules[0].device, 1);
  EXPECT_EQ(plan->rules[0].at_ms, 50);
  EXPECT_EQ(plan->rules[0].count, 0u);
  EXPECT_EQ(plan->rules[1].site, FaultSite::kH2D);
  EXPECT_EQ(plan->rules[1].at_ms, -1) << "at_ms must default to always-armed";

  // Malformed wall-clock triggers parse fail-closed.
  EXPECT_FALSE(FaultPlan::parse("replica:at_ms=-5").has_value());
  EXPECT_FALSE(FaultPlan::parse("replica:at_ms=").has_value());
}

TEST(ReplicaChaos, FaultSpecRoundTripsThroughToSpec) {
  const std::string spec =
      "replica:dev=1,at_ms=50,count=2;replica:after=3,count=0,stall_ns=500000;"
      "devloss:dev=0,after=100,count=1";
  auto plan = FaultPlan::parse(spec);
  ASSERT_TRUE(plan.has_value());
  const std::string emitted = plan->to_spec();
  auto reparsed = FaultPlan::parse(emitted);
  ASSERT_TRUE(reparsed.has_value()) << emitted;
  ASSERT_EQ(reparsed->rules.size(), plan->rules.size());
  for (size_t i = 0; i < plan->rules.size(); ++i) {
    SCOPED_TRACE("rule " + std::to_string(i) + " of " + emitted);
    EXPECT_EQ(reparsed->rules[i].site, plan->rules[i].site);
    EXPECT_EQ(reparsed->rules[i].device, plan->rules[i].device);
    EXPECT_EQ(reparsed->rules[i].after, plan->rules[i].after);
    EXPECT_EQ(reparsed->rules[i].count, plan->rules[i].count);
    EXPECT_EQ(reparsed->rules[i].stall_ns, plan->rules[i].stall_ns);
    EXPECT_EQ(reparsed->rules[i].at_ms, plan->rules[i].at_ms);
  }
}

TEST(ReplicaChaos, AtMsRuleIsDormantUntilTriggerTime) {
  auto plan = FaultPlan::parse("replica:dev=0,at_ms=200,count=0");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);
  // Before the trigger time the rule neither fires nor counts.
  EXPECT_EQ(injector.check(FaultSite::kReplica, 0).action, inject::FaultAction::kNone);
  EXPECT_EQ(injector.faults_fired(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(injector.check(FaultSite::kReplica, 0).action, inject::FaultAction::kFail);
  EXPECT_GT(injector.faults_fired(), 0u);
}

TEST(ReplicaChaos, DevlossRulesNeverMatchReplicaConsults) {
  auto plan = FaultPlan::parse("devloss:dev=0,after=0,count=0");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);
  EXPECT_EQ(injector.check(FaultSite::kReplica, 0).action, inject::FaultAction::kNone);
  auto replica_plan = FaultPlan::parse("replica:dev=0,after=0,count=0");
  FaultInjector replica_injector(*replica_plan);
  EXPECT_EQ(replica_injector.check(FaultSite::kH2D, 0).action, inject::FaultAction::kNone);
  EXPECT_EQ(replica_injector.check(FaultSite::kDeviceLoss, 0).action,
            inject::FaultAction::kNone);
}

// ---------------------------------------------------------------------------
// Differential tier: every fault class vs the healthy oracle.

TEST(ReplicaChaos, DeadReplicaFromStartIsIdentical) {
  // Replica 1 of every shard black-holes everything (writes lost, reads
  // unanswered); failover must route every read to replica 0.
  expect_oracle_identical(replicated_config(2, 2), "replica:dev=1,after=0,count=0");
}

TEST(ReplicaChaos, ReplicaKilledMidRunIsIdentical) {
  ShardedTagMatch::ShardStats stats;
  expect_oracle_identical(
      replicated_config(2, 2), "",
      [](ShardedTagMatch& router) {
        for (unsigned s = 0; s < router.num_shards(); ++s) {
          router.kill_replica(s, 1);
        }
      },
      &stats);
  EXPECT_GT(stats.failovers, 0u) << "killed replicas must have been routed around";
}

TEST(ReplicaChaos, SlowReplicaUnderHedgingIsIdentical) {
  // Replica 1 answers everything 30 ms late; with a 2 ms hedge budget every
  // read that lands on it must be claimed by the backup instead.
  ShardedTagMatch::ShardStats stats;
  expect_oracle_identical(replicated_config(2, 2, std::chrono::milliseconds(2)),
                          "replica:dev=1,after=0,count=0,stall_ns=30000000", nullptr, &stats);
  EXPECT_GT(stats.hedged, 0u) << "a permanently slow replica must trigger hedged reads";
}

TEST(ReplicaChaos, TransientWriteDropsAreRepairedByAntiEntropy) {
  // The first five writes to replica 0 of each shard are lost; consolidate's
  // anti-entropy must repair the lag before any query runs.
  ShardedTagMatch::ShardStats stats;
  expect_oracle_identical(replicated_config(2, 2), "replica:dev=0,after=0,count=5", nullptr,
                          &stats);
  EXPECT_GT(stats.repairs, 0u) << "write-dropped replicas must have been repaired";
}

TEST(ReplicaChaos, DivergentDropsWithEqualCountsStillConverge) {
  // Fault-rule counters are shared across replicas, so this plan makes
  // replica 0 drop the first write and replica 1 drop the second: both end
  // with equal applied-write counts but different content. Anti-entropy
  // must not read count equality as convergence — the recorded drops force
  // the content diff and the replicas converge.
  auto plan =
      FaultPlan::parse("replica:dev=0,after=0,count=1;replica:dev=1,after=1,count=1");
  ASSERT_TRUE(plan.has_value());
  shard::ReplicaConfig rc;
  rc.num_replicas = 2;
  rc.fault_injector = std::make_shared<FaultInjector>(*plan);
  obs::Registry registry;
  ReplicaSet set(engine_config(), rc, &registry);

  Rng rng(test::test_seed(9003));
  for (int i = 0; i < 20; ++i) {
    set.add_set(BloomFilter192(random_filter(rng, 80, 3)), static_cast<Key>(i));
  }
  set.consolidate();
  EXPECT_GT(registry.counter("replica.repairs")->value(), 0u)
      << "equal applied counts with divergent drops must still trigger repair";
  EXPECT_EQ(set.dump_replica(0), set.dump_replica(1))
      << "replicas that dropped different writes must converge at consolidate";
}

TEST(ReplicaChaos, AllReplicasDeadDegradesImmediatelyUnderHedging) {
  // With every replica killed before accept, a hedged read must degrade to
  // an empty result inline (as the non-hedged path does) instead of parking
  // until the sweeper's ~250 ms exhaustion backstop.
  shard::ReplicaConfig rc;
  rc.num_replicas = 2;
  rc.hedge_delay = std::chrono::milliseconds(5);
  obs::Registry registry;
  ReplicaSet set(engine_config(), rc, &registry);
  Rng rng(test::test_seed(9004));
  set.add_set(BloomFilter192(random_filter(rng, 80, 3)), Key{1});
  set.consolidate();
  set.kill_replica(0);
  set.kill_replica(1);

  const int64_t start = now_ns();
  std::promise<std::vector<Key>> done;
  set.match(BloomFilter192(random_filter(rng, 80, 3)), {}, Matcher::MatchKind::kMatch, 0,
            {}, [&done](std::vector<Key> keys) { done.set_value(std::move(keys)); });
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::milliseconds(100)), std::future_status::ready)
      << "all-dead accept must not wait for the exhaustion backstop";
  EXPECT_TRUE(fut.get().empty());
  EXPECT_LT(now_ns() - start, 100'000'000);
  set.flush();  // Must return immediately: nothing is outstanding.
}

TEST(ReplicaChaos, AtMsTriggeredKillMidStreamIsIdentical) {
  // Replica 1 dies (wall clock) 100 ms after the injector arms — mid
  // query stream; earlier queries may be served by it, later ones must fail
  // over, and every result must stay oracle-identical.
  auto config = replicated_config(2, 2);
  auto plan = FaultPlan::parse("replica:dev=1,at_ms=100,count=0");
  ASSERT_TRUE(plan.has_value());
  config.shard.fault_injector = std::make_shared<FaultInjector>(*plan);
  ShardedTagMatch router(std::move(config));
  const Workload& w = shared_workload();
  for (const auto& [f, k] : w.entries) {
    router.add_set(BloomFilter192(f), k);
  }
  router.consolidate();
  // Stretch the query stream across the trigger: ~8 ms per step x 40
  // queries straddles the 100 ms mark.
  for (size_t i = 0; i < w.queries.size(); ++i) {
    auto keys = sorted(router.match(BloomFilter192(w.queries[i])));
    EXPECT_EQ(keys, oracle()[i]) << "query " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
  }
}

// ---------------------------------------------------------------------------
// Health state machine: exact transition sequences.

TEST(ReplicaChaosHealth, QuarantineProbeRecoverHealthySequence) {
  // Drive one ReplicaSet directly. The plan black-holes exactly two reads on
  // replica 1 *after* the writes (each of the `entries` writes consults the
  // dev=1 rule once): two hedge-deadline misses at miss_threshold=2
  // quarantine it; the probe after the quarantine period succeeds (the fault
  // budget is spent) and readmits it through kRecovered; its next claimed
  // read makes it kHealthy.
  const int kEntries = 60;
  auto plan = FaultPlan::parse("replica:dev=1,after=" + std::to_string(kEntries) + ",count=2");
  ASSERT_TRUE(plan.has_value());

  shard::ReplicaConfig rc;
  rc.num_replicas = 2;
  rc.hedge_delay = std::chrono::milliseconds(10);
  rc.miss_threshold = 2;
  rc.quarantine_period = std::chrono::milliseconds(20);
  rc.fault_injector = std::make_shared<FaultInjector>(*plan);
  obs::Registry registry;
  // This test drives solo blocking queries, so the engine needs its batch
  // flusher: without batch_timeout a submitted batch's results wait in the
  // stream's double buffer for the next batch (or an explicit flush), and
  // every read would miss the hedge deadline.
  TagMatchConfig ec = engine_config();
  ec.batch_size = 1;
  ec.batch_timeout = std::chrono::milliseconds(1);
  ReplicaSet set(ec, rc, &registry);

  Rng rng(test::test_seed(9002));
  std::vector<BitVector192> filters;
  for (int i = 0; i < kEntries; ++i) {
    filters.push_back(random_filter(rng, 80, 3));
    set.add_set(BloomFilter192(filters.back()), static_cast<Key>(i));
  }
  set.consolidate();

  auto query_once = [&](const BitVector192& q) {
    std::promise<void> done;
    set.match(BloomFilter192(q), {}, Matcher::MatchKind::kMatch, 0, {},
              [&done](std::vector<Key>) { done.set_value(); });
    done.get_future().wait();
  };

  // Phase 1: reads until replica 1 is quarantined (round-robin lands on it
  // every other query; each black-holed dispatch costs one ~10 ms hedge miss).
  const int64_t deadline = now_ns() + 5'000'000'000;
  while (set.health(1) != ReplicaHealth::kQuarantined && now_ns() < deadline) {
    query_once(filters[0]);
  }
  ASSERT_EQ(set.health(1), ReplicaHealth::kQuarantined) << "quarantine never happened";

  // Phase 2: wait out the quarantine, then keep reading until the shadow
  // probe readmits it and a claimed read marks it healthy again.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  while (set.health(1) != ReplicaHealth::kHealthy && now_ns() < deadline) {
    query_once(filters[0]);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(set.health(1), ReplicaHealth::kHealthy) << "replica 1 never recovered";

  // Exact transition sequence for replica 1: quarantined, probing,
  // recovered, healthy — nothing else, in that order. Replica 0 never
  // transitions at all.
  std::vector<ReplicaHealth> seq;
  for (const auto& [replica, health] : set.health_history()) {
    EXPECT_EQ(replica, 1u) << "only replica 1 may transition in this plan";
    if (replica == 1) {
      seq.push_back(health);
    }
  }
  const std::vector<ReplicaHealth> want = {
      ReplicaHealth::kQuarantined, ReplicaHealth::kProbing, ReplicaHealth::kRecovered,
      ReplicaHealth::kHealthy};
  EXPECT_EQ(seq, want);
}

TEST(ReplicaChaosHealth, RestartedReplicaIsQuarantinedUntilRepaired) {
  auto config = replicated_config(2, 2);
  ShardedTagMatch router(std::move(config));
  const Workload& w = shared_workload();
  for (const auto& [f, k] : w.entries) {
    router.add_set(BloomFilter192(f), k);
  }
  router.consolidate();

  router.kill_replica(0, 1);
  router.restart_replica(0, 1);  // Fresh empty engine: must not serve yet.
  EXPECT_EQ(router.replica_health(0, 1), ReplicaHealth::kQuarantined);
  // Pre-repair, every read routes around the empty replica.
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(sorted(router.match(BloomFilter192(w.queries[i]))), oracle()[i]) << "query " << i;
  }
  router.consolidate();  // Anti-entropy repairs the restarted replica.
  EXPECT_EQ(router.replica_health(0, 1), ReplicaHealth::kRecovered);
  EXPECT_EQ(router.replica_dump(0, 1), router.replica_dump(0, 0))
      << "repair must converge the restarted replica to the reference content";
  EXPECT_GT(router.shard_stats().repairs, 0u);
}

// ---------------------------------------------------------------------------
// Resharding: layout changes across shard AND replica counts.

std::vector<std::pair<std::array<uint64_t, 3>, Key>> logical_content(ShardedTagMatch& router) {
  std::vector<std::pair<std::array<uint64_t, 3>, Key>> all;
  for (unsigned s = 0; s < router.num_shards(); ++s) {
    auto rows = router.replica_dump(s, 0);
    all.insert(all.end(), rows.begin(), rows.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

TEST(ReplicaChaosReshard, SaveLoadAcrossShardAndReplicaCounts) {
  const std::string path = testing::TempDir() + "replica_reshard.idx";
  const Workload& w = shared_workload();

  std::vector<std::pair<std::array<uint64_t, 3>, Key>> saved_content;
  {
    ShardedTagMatch saver(replicated_config(3, 2));
    for (const auto& [f, k] : w.entries) {
      saver.add_set(BloomFilter192(f), k);
    }
    saver.consolidate();
    saved_content = logical_content(saver);
    ASSERT_TRUE(saver.save_index(path));
  }

  ShardedTagMatch loader(replicated_config(2, 3));
  ASSERT_TRUE(loader.load_index(path));
  // No loss, no duplication: the logical multiset of (filter, key) pairs is
  // preserved exactly across the (3,2) -> (2,3) layout change.
  EXPECT_EQ(logical_content(loader), saved_content);
  // And every replica of every shard converged to the same content.
  for (unsigned s = 0; s < loader.num_shards(); ++s) {
    for (unsigned r = 1; r < loader.num_replicas(); ++r) {
      EXPECT_EQ(loader.replica_dump(s, r), loader.replica_dump(s, 0))
          << "shard " << s << " replica " << r;
    }
  }
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(sorted(loader.match(BloomFilter192(w.queries[i]))), oracle()[i]) << "query " << i;
  }
  std::remove(path.c_str());
  for (int s = 0; s < 3; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

TEST(ReplicaChaosReshard, TruncatedAndCorruptManifestsAreRejected) {
  const std::string path = testing::TempDir() + "replica_manifest.idx";
  const Workload& w = shared_workload();
  {
    ShardedTagMatch saver(replicated_config(2, 2));
    for (const auto& [f, k] : w.entries) {
      saver.add_set(BloomFilter192(f), k);
    }
    saver.consolidate();
    ASSERT_TRUE(saver.save_index(path));
  }

  ShardedTagMatch loader(replicated_config(2, 2));
  for (const auto& [f, k] : w.entries) {
    loader.add_set(BloomFilter192(f), k);
  }
  loader.consolidate();

  // Truncate the manifest mid-header.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[10];
    ASSERT_EQ(std::fread(buf, 1, sizeof buf, f), sizeof buf);
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    std::fwrite(buf, 1, sizeof buf, f);
    std::fclose(f);
  }
  EXPECT_FALSE(loader.load_index(path));

  // Corrupt the replica-count field (offset 12: magic|version|shards|replicas)
  // to an out-of-range value.
  {
    ShardedTagMatch saver(replicated_config(2, 2));
    for (const auto& [f, k] : w.entries) {
      saver.add_set(BloomFilter192(f), k);
    }
    saver.consolidate();
    ASSERT_TRUE(saver.save_index(path));
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    uint32_t bogus = 1u << 20;
    std::fseek(f, 12, SEEK_SET);
    std::fwrite(&bogus, sizeof(bogus), 1, f);
    std::fclose(f);
  }
  EXPECT_FALSE(loader.load_index(path));

  // A failed load must leave the live engines untouched.
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(sorted(loader.match(BloomFilter192(w.queries[i]))), oracle()[i]) << "query " << i;
  }
  std::remove(path.c_str());
  for (int s = 0; s < 2; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

TEST(ReplicaChaosReshard, LiveReshardUnderTrafficLosesNothing) {
  ShardedTagMatch router(replicated_config(2, 2));
  const Workload& w = shared_workload();
  for (const auto& [f, k] : w.entries) {
    router.add_set(BloomFilter192(f), k);
  }
  router.consolidate();
  const auto before = logical_content(router);

  // Queries and writes keep flowing while the layout splits 2 -> 4. The
  // writer adds disjoint keys (>= 1000) so the oracle comparison for the
  // original content stays exact.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::thread querier([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      auto keys = sorted(router.match(BloomFilter192(w.queries[i % w.queries.size()])));
      std::vector<Key> expect;
      for (Key k : oracle()[i % w.queries.size()]) {
        expect.push_back(k);
      }
      // Concurrent writes only add keys >= 1000; original keys must all
      // still be there.
      std::vector<Key> original;
      for (Key k : keys) {
        if (k < 1000) {
          original.push_back(k);
        }
      }
      EXPECT_EQ(original, expect) << "query " << i % w.queries.size() << " during reshard";
      queries_ok.fetch_add(1, std::memory_order_relaxed);
      ++i;
    }
  });
  std::thread writer([&] {
    Key next = 1000;
    Rng wrng(test::test_seed(9004));
    while (!stop.load(std::memory_order_acquire)) {
      BitVector192 f = random_filter(wrng, 120, 3);
      router.add_set(BloomFilter192(f), next++);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  ASSERT_TRUE(router.reshard(4));
  EXPECT_EQ(router.num_shards(), 4u);
  ASSERT_TRUE(router.reshard(3));  // Merge back down under the same traffic.
  EXPECT_EQ(router.num_shards(), 3u);

  stop.store(true, std::memory_order_release);
  querier.join();
  writer.join();
  router.flush();
  router.consolidate();

  // Every original (filter, key) pair survived both reshards exactly once.
  auto after = logical_content(router);
  after.erase(std::remove_if(after.begin(), after.end(),
                             [](const auto& row) { return row.second >= 1000; }),
              after.end());
  EXPECT_EQ(after, before);
  EXPECT_GT(queries_ok.load(), 0u);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    auto keys = sorted(router.match(BloomFilter192(w.queries[i])));
    std::vector<Key> original;
    for (Key k : keys) {
      if (k < 1000) {
        original.push_back(k);
      }
    }
    EXPECT_EQ(original, oracle()[i]) << "query " << i << " after reshard";
  }

  EXPECT_FALSE(router.reshard(0)) << "zero shards must be rejected";
}


}  // namespace
}  // namespace tagmatch
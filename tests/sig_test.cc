// Tests for the pluggable signature-scheme subsystem (src/sig): registry
// integrity, the union/subset-soundness invariant every scheme must uphold,
// kernel-variant equivalence, FPR-model sanity, and the regression pin for
// the guarded BloomFilter192 probe sequence.
#include "src/sig/signature_scheme.h"

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/bloom/bloom_filter.h"
#include "src/common/bit_vector.h"
#include "src/common/hash.h"
#include "src/workload/tags.h"

namespace tagmatch::sig {
namespace {

Hash128 random_hash(std::mt19937_64& rng) { return Hash128{rng(), rng()}; }

std::vector<std::string> tag_strings(std::mt19937_64& rng, size_t n) {
  std::vector<std::string> tags;
  tags.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tags.push_back("tag_" + std::to_string(rng() % 100000));
  }
  return tags;
}

// --- Registry -------------------------------------------------------------

TEST(SigRegistry, AllSchemesBaselineFirstWithStableIdsAndNames) {
  auto all = all_schemes();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], &bloom192_scheme());
  EXPECT_EQ(all[0]->id(), SchemeId::kBloom192);
  EXPECT_EQ(all[0]->name(), "bloom192");
  EXPECT_EQ(all[1]->id(), SchemeId::kBlocked64);
  EXPECT_EQ(all[1]->name(), "blocked64");
  EXPECT_EQ(all[2]->id(), SchemeId::kTwoChoice64);
  EXPECT_EQ(all[2]->name(), "twochoice64");
}

TEST(SigRegistry, LookupByNameAndIdRoundTrips) {
  for (const SignatureScheme* s : all_schemes()) {
    EXPECT_EQ(scheme_by_name(s->name()), s);
    EXPECT_EQ(scheme_by_id(static_cast<uint32_t>(s->id())), s);
  }
  EXPECT_EQ(scheme_by_name("nope"), nullptr);
  EXPECT_EQ(scheme_by_id(99), nullptr);
}

TEST(SigRegistry, NamesCsvListsEveryScheme) {
  const std::string csv = scheme_names_csv();
  for (const SignatureScheme* s : all_schemes()) {
    EXPECT_NE(csv.find(std::string(s->name())), std::string::npos) << csv;
  }
}

TEST(SigRegistry, ResolvePrefersConfiguredOverDefault) {
  EXPECT_EQ(&resolve(&blocked64_scheme()), &blocked64_scheme());
  // With no configured pointer and TAGMATCH_SCHEME unset (or already consumed
  // by the test environment), resolve falls back to a registered scheme.
  const SignatureScheme& fallback = resolve(nullptr);
  EXPECT_NE(scheme_by_name(fallback.name()), nullptr);
}

// --- Union invariant / subset soundness (per scheme) -----------------------

// sig(S1 ∪ S2) == sig(S1) | sig(S2): the per-tag pattern must depend on the
// tag only, never on what is already in the filter or on insertion order.
TEST(SigSoundness, SignatureOfUnionIsUnionOfSignatures) {
  std::mt19937_64 rng(7);
  for (const SignatureScheme* s : all_schemes()) {
    for (int round = 0; round < 50; ++round) {
      std::vector<Hash128> a, b;
      for (int i = 0; i < 6; ++i) a.push_back(random_hash(rng));
      for (int i = 0; i < 6; ++i) b.push_back(random_hash(rng));
      BitVector192 sa, sb, su;
      for (const auto& h : a) s->add_hash(sa, h);
      for (const auto& h : b) s->add_hash(sb, h);
      // Build the union in shuffled order to catch order dependence.
      std::vector<Hash128> u = a;
      u.insert(u.end(), b.begin(), b.end());
      std::shuffle(u.begin(), u.end(), rng);
      for (const auto& h : u) s->add_hash(su, h);
      BitVector192 expected = sa;
      expected |= sb;
      EXPECT_EQ(su, expected) << s->name();
    }
  }
}

// S1 ⊆ S2 must imply the bitwise subset test passes, under both kernel
// variants (one-sided error only).
TEST(SigSoundness, SubsetsAlwaysPassTheBitwiseTest) {
  std::mt19937_64 rng(11);
  for (const SignatureScheme* s : all_schemes()) {
    for (int round = 0; round < 50; ++round) {
      std::vector<Hash128> super;
      for (int i = 0; i < 10; ++i) super.push_back(random_hash(rng));
      BitVector192 sig_super;
      for (const auto& h : super) s->add_hash(sig_super, h);
      // Any sub-multiset of `super` must be covered.
      BitVector192 sig_sub;
      for (size_t i = 0; i < super.size(); i += 2) s->add_hash(sig_sub, super[i]);
      EXPECT_TRUE(subset_test(KernelVariant::kBranchChain, sig_sub, sig_super)) << s->name();
      EXPECT_TRUE(subset_test(KernelVariant::kOrReduce, sig_sub, sig_super)) << s->name();
    }
  }
}

TEST(SigSoundness, ProbeFindsEveryAddedHash) {
  std::mt19937_64 rng(13);
  for (const SignatureScheme* s : all_schemes()) {
    std::vector<Hash128> hashes;
    BitVector192 bits;
    for (int i = 0; i < 32; ++i) {
      hashes.push_back(random_hash(rng));
      s->add_hash(bits, hashes.back());
    }
    for (const auto& h : hashes) {
      EXPECT_TRUE(s->probe(bits, h)) << s->name();
    }
    EXPECT_FALSE(s->probe(BitVector192{}, hashes[0])) << s->name();
  }
}

TEST(SigSoundness, EveryTagSetsAtMostBitsPerTagBits) {
  std::mt19937_64 rng(17);
  for (const SignatureScheme* s : all_schemes()) {
    unsigned max_pop = 0;
    for (int i = 0; i < 200; ++i) {
      BitVector192 bits;
      s->add_hash(bits, random_hash(rng));
      max_pop = std::max(max_pop, bits.popcount());
      EXPECT_GE(bits.popcount(), 1u) << s->name();
    }
    // The budget is an upper bound, and the common case uses all of it.
    EXPECT_EQ(max_pop, s->bits_per_tag()) << s->name();
  }
}

// --- Kernel variants -------------------------------------------------------

TEST(SigKernel, BranchChainAndOrReduceAgreeEverywhere) {
  std::mt19937_64 rng(23);
  for (int round = 0; round < 2000; ++round) {
    BitVector192 f, q;
    // Mix dense, sparse and correlated pairs.
    for (int i = 0; i < 3; ++i) {
      f.block(i) = rng() & rng();
      q.block(i) = (round % 3 == 0) ? (f.block(i) | rng()) : rng();
    }
    EXPECT_EQ(subset_test(KernelVariant::kBranchChain, f, q),
              subset_test(KernelVariant::kOrReduce, f, q));
  }
}

TEST(SigKernel, PrefilterBatchMatchesScalarTest) {
  std::mt19937_64 rng(29);
  const SignatureScheme& s = blocked64_scheme();
  BitVector192 mask;
  for (int i = 0; i < 4; ++i) s.add_hash(mask, random_hash(rng));
  std::vector<BitVector192> queries;
  for (int i = 0; i < 100; ++i) {
    BitVector192 q;
    for (int j = 0; j < 12; ++j) s.add_hash(q, random_hash(rng));
    if (i % 4 == 0) q |= mask;  // Guarantee some hits.
    queries.push_back(q);
  }
  uint8_t out[256];
  const uint32_t n = prefilter_batch(KernelVariant::kOrReduce, mask, queries, out);
  std::set<unsigned> forwarded(out, out + n);
  EXPECT_EQ(forwarded.size(), n);  // Indices are unique and ascending.
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(forwarded.count(i) == 1,
              subset_test(KernelVariant::kOrReduce, mask, queries[i]))
        << i;
  }
  EXPECT_GT(n, 0u);
  EXPECT_LT(n, queries.size());
}

// --- FPR model -------------------------------------------------------------

TEST(SigFpr, ModelIsAProbabilityAndMonotone) {
  for (const SignatureScheme* s : all_schemes()) {
    double prev = 1.0;
    for (unsigned extra = 1; extra <= 8; ++extra) {
      const double p = s->false_positive_probability(10, extra);
      EXPECT_GE(p, 0.0) << s->name();
      EXPECT_LE(p, 1.0) << s->name();
      // More extra tags make a false pass strictly harder.
      EXPECT_LT(p, prev) << s->name() << " extra=" << extra;
      prev = p;
    }
    // Larger queries fill the filter and make false passes easier.
    EXPECT_GT(s->false_positive_probability(30, 2),
              s->false_positive_probability(5, 2))
        << s->name();
  }
}

// Blocked schemes trade probes for speed; their modeled FPR must stay within
// a usable band of the baseline (the per-scheme MAX_P sweep re-derives the
// operating point, it does not need equality).
TEST(SigFpr, BlockedSchemesStayInUsableBand) {
  const double base = bloom192_scheme().false_positive_probability(10, 3);
  for (const SignatureScheme* s : all_schemes()) {
    const double p = s->false_positive_probability(10, 3);
    EXPECT_LT(p, 1e-3) << s->name();
    EXPECT_GE(p, base * 0.01) << s->name();  // Model did not collapse to 0.
  }
}

// --- Scheme-encoded workload ----------------------------------------------

TEST(SigEncode, StringEncodeMatchesLegacyBloomPath) {
  std::mt19937_64 rng(31);
  auto tags = tag_strings(rng, 8);
  EXPECT_EQ(bloom192_scheme().encode(tags), BloomFilter192::of(tags).bits());
}

TEST(SigEncode, DefaultTagIdEncodeIsBloom192) {
  std::vector<workload::TagId> ids = {workload::make_hashtag(0, 17),
                                      workload::make_hashtag(3, 512),
                                      workload::make_publisher_tag(7)};
  const BitVector192 via_default = workload::encode_tags(ids).bits();
  EXPECT_EQ(via_default, workload::encode_tags(ids, bloom192_scheme()).bits());
  BitVector192 manual;
  for (workload::TagId t : ids) {
    bloom192_scheme().add_hash(manual, workload::tag_id_hash128(t));
  }
  EXPECT_EQ(via_default, manual);
  // A non-baseline scheme places bits differently for the same tags.
  EXPECT_NE(via_default, workload::encode_tags(ids, blocked64_scheme()).bits());
}

TEST(SigEncode, TagIdHashStreamKeepsStepOdd) {
  for (workload::TagId t = 0; t < 1000; ++t) {
    EXPECT_EQ(workload::tag_id_hash128(t).h2 & 1, 1u) << t;
  }
}

// --- Satellite 2: guarded BloomFilter192 probe sequence --------------------

// Golden pin: these positions are baked into every persisted index and the
// golden workload fingerprint. If this test fails, signatures changed shape
// and all on-disk indexes are invalidated — that must never happen silently.
TEST(BloomProbeRegression, GoldenProbePositions) {
  struct Golden {
    const char* tag;
    unsigned pos[BloomFilter192::kNumHashes];
  };
  const Golden golden[] = {
      {"alerts", {6, 17, 156, 167, 178, 125, 136}},
      {"gpu", {19, 64, 109, 154, 7, 52, 97}},
      {"eurosys", {185, 98, 75, 180, 157, 134, 47}},
  };
  for (const auto& g : golden) {
    unsigned pos[BloomFilter192::kNumHashes];
    BloomFilter192::probe_positions(hash128(g.tag), pos);
    for (unsigned i = 0; i < BloomFilter192::kNumHashes; ++i) {
      EXPECT_EQ(pos[i], g.pos[i]) << g.tag << " probe " << i;
    }
  }
}

// For every hash the real producers emit (h2 odd, hence never ≡ 0 mod 192),
// the guarded sequence is bit-identical to the original unguarded loop —
// the guard is behavior-preserving on all real inputs.
TEST(BloomProbeRegression, GuardIsIdentityForOddSteps) {
  std::mt19937_64 rng(37);
  for (int round = 0; round < 5000; ++round) {
    Hash128 h{rng(), rng() | 1};
    unsigned guarded[BloomFilter192::kNumHashes];
    BloomFilter192::probe_positions(h, guarded);
    // The pre-guard semantics: accumulate in uint64 (mod-2^64 wrap matters,
    // since 192 does not divide 2^64), reduce mod 192 per probe.
    uint64_t pos = h.h1;
    for (unsigned i = 0; i < BloomFilter192::kNumHashes; ++i) {
      EXPECT_EQ(guarded[i], static_cast<unsigned>(pos % BloomFilter192::kNumBits));
      pos += h.h2;
    }
  }
}

// The degenerate step (h2 ≡ 0 mod 192) used to collapse all 7 probes onto a
// single bit, reducing the tag's pattern to one bit and gutting selectivity.
// The guard must spread such tags over 7 distinct positions.
TEST(BloomProbeRegression, DegenerateStepNoLongerCollapses) {
  std::mt19937_64 rng(41);
  for (int round = 0; round < 200; ++round) {
    // Halve both words so h1 + h2 cannot wrap mod 2^64 (keeps the unguarded
    // collapse check below exact).
    const uint64_t q = (rng() >> 1) / BloomFilter192::kNumBits;
    Hash128 h{rng() >> 1, q * BloomFilter192::kNumBits};  // step ≡ 0 (mod 192)
    unsigned pos[BloomFilter192::kNumHashes];
    BloomFilter192::probe_positions(h, pos);
    std::set<unsigned> distinct(pos, pos + BloomFilter192::kNumHashes);
    EXPECT_EQ(distinct.size(), BloomFilter192::kNumHashes)
        << "h2=" << h.h2 << " collapsed to " << distinct.size() << " bits";
    // Unguarded, every probe would land on the same bit:
    EXPECT_EQ(static_cast<unsigned>((h.h1 + h.h2) % BloomFilter192::kNumBits),
              static_cast<unsigned>(h.h1 % BloomFilter192::kNumBits));
  }
}

}  // namespace
}  // namespace tagmatch::sig

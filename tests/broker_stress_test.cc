// Concurrency stress for the broker's churn paths, written to run under
// ThreadSanitizer (the CI tsan job runs `ctest -R broker`). Before the
// subscribe() hardening these raced:
//  * subscribe() read staged_churn_ after releasing registry_mu_ while
//    run_consolidation() reset it under the lock (torn size_t read);
//  * subscribe() called engine_->add_set() without the shared publish gate,
//    racing the consolidator's exclusive rebuild and — sharded — load()'s
//    engine swap (commit_engines).
#include "src/broker/broker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace tagmatch::broker {
namespace {

using Tags = std::vector<std::string>;

BrokerConfig stress_config() {
  BrokerConfig c;
  c.engine.num_threads = 2;
  c.engine.num_gpus = 1;
  c.engine.streams_per_gpu = 2;
  c.engine.gpu_sms_per_device = 1;
  c.engine.gpu_memory_capacity = 128ull << 20;
  c.engine.gpu_costs.enforce = false;
  c.engine.batch_size = 8;
  c.engine.max_partition_size = 32;
  c.engine.batch_timeout = std::chrono::milliseconds(1);
  return c;
}

// Subscribe/unsubscribe churn racing the background consolidator: every
// subscribe bumps staged_churn_ while run_consolidation() resets it, and
// every add_set lands while consolidations rebuild the index.
TEST(BrokerStress, ChurnVsConsolidate) {
  BrokerConfig config = stress_config();
  config.consolidate_interval = std::chrono::milliseconds(1);
  config.consolidate_after_churn = 8;  // Early triggers exercise the cv path.
  Broker broker(config);

  constexpr int kChurners = 4;
  constexpr int kRounds = 150;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      broker.publish(Message{Tags{"topic" + std::to_string(i++ % 8), "x"}, "p"});
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurners; ++t) {
    churners.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        SubscriberId id = broker.connect();
        SubscriptionId s =
            broker.subscribe(id, Tags{"topic" + std::to_string((t * kRounds + i) % 8)});
        if (i % 2 == 0) {
          broker.unsubscribe(id, s);
        }
        broker.disconnect(id);
      }
    });
  }
  for (auto& t : churners) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  broker.flush();
  EXPECT_EQ(broker.stats().subscribers, 0u);
  EXPECT_GT(broker.stats().consolidations, 0u);
}

// Sharded variant with a concurrent load(): commit_engines swaps the
// shards_ vector under the exclusive gate while subscribers keep staging
// add_set — the subscribe path must hold the shared gate or the swap races.
TEST(BrokerStress, ChurnVsLoadSharded) {
  const std::string prefix = ::testing::TempDir() + "/broker_stress_churn_vs_load";
  BrokerConfig config = stress_config();
  config.engine_shards = 2;
  config.consolidate_interval = std::chrono::milliseconds(2);
  Broker broker(config);
  // The seed subscriber owns a subscription in the saved state, so every
  // load() restores it — churners can keep subscribing on its id without
  // racing the subscriber-table replacement.
  SubscriberId seed = broker.connect();
  broker.subscribe(seed, Tags{"durable"});
  ASSERT_TRUE(broker.save(prefix));

  constexpr int kChurners = 3;
  constexpr int kRounds = 60;
  std::atomic<bool> stop{false};
  std::thread loader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(broker.load(prefix));
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurners; ++t) {
    churners.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        broker.subscribe(seed, Tags{"churn" + std::to_string((t * kRounds + i) % 4)});
      }
    });
  }
  for (auto& t : churners) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  loader.join();
  broker.flush();
  std::remove((prefix + ".idx").c_str());
  std::remove((prefix + ".subs").c_str());
  std::remove((prefix + ".idx.shard0").c_str());
  std::remove((prefix + ".idx.shard1").c_str());
}

}  // namespace
}  // namespace tagmatch::broker

// Tests for the task-based execution core (src/task): queue discipline,
// stealing, pinning, trace propagation, shutdown semantics and the task.*
// instruments. The TaskStress suite doubles as the TSan target for the
// invariants written down in docs/CONCURRENCY.md — the tsan CI job runs this
// binary alongside the broker/shard suites.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/trace.h"
#include "src/task/task_scheduler.h"

namespace tagmatch::task {
namespace {

SchedulerConfig config_with(unsigned workers, bool pin = false) {
  SchedulerConfig config;
  config.num_workers = workers;
  config.pin_workers = pin;
  return config;
}

TEST(TaskScheduler, SingleWorkerExecutesFifoPerProducer) {
  // One worker, one consumer end: execution order must equal submit order.
  TaskScheduler scheduler(config_with(1));
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    scheduler.submit([i, &order] { order.push_back(i); });
  }
  scheduler.shutdown();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(order[i], i);
  }
  EXPECT_EQ(scheduler.queued_total(), 200u);
  EXPECT_EQ(scheduler.executed_total(), 200u);
  EXPECT_EQ(scheduler.stolen_total(), 0u);
}

TEST(TaskScheduler, StealingDrainsASingleHotQueue) {
  // Pile everything onto worker 0's queue; the other workers must steal.
  // Each task sleeps so the backlog outlives worker 0's drain rate.
  TaskScheduler scheduler(config_with(4));
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> ran(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    scheduler.submit_to(0, [i, &ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
  scheduler.shutdown();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "task " << i << " ran " << ran[i].load() << " times";
  }
  EXPECT_EQ(scheduler.executed_total(), static_cast<uint64_t>(kTasks));
  EXPECT_GT(scheduler.stolen_total(), 0u);
}

TEST(TaskScheduler, PinnedFlagsReflectAffinityOutcome) {
  TaskScheduler unpinned(config_with(2, /*pin=*/false));
  for (bool p : unpinned.pinned()) {
    EXPECT_FALSE(p);
  }
  TaskScheduler pinned(config_with(2, /*pin=*/true));
  const std::vector<bool> flags = pinned.pinned();
  ASSERT_EQ(flags.size(), 2u);
#ifdef __linux__
  // pthread_setaffinity_np to (i mod hardware_concurrency) succeeds on any
  // Linux host we run on, containers included.
  for (bool p : flags) {
    EXPECT_TRUE(p);
  }
#else
  for (bool p : flags) {
    EXPECT_FALSE(p);  // Pinning is Linux-only; the flag reports "not pinned".
  }
#endif
}

TEST(TaskScheduler, CurrentWorkerIsPerScheduler) {
  TaskScheduler a(config_with(1));
  TaskScheduler b(config_with(1));
  EXPECT_EQ(a.current_worker(), -1);  // Off-pool caller.
  std::atomic<int> seen_in_a{-2};
  std::atomic<int> a_seen_by_b{-2};
  a.submit([&] {
    seen_in_a = a.current_worker();
    a_seen_by_b = b.current_worker();  // A's worker is off-pool for B.
  });
  a.shutdown();
  EXPECT_EQ(seen_in_a.load(), 0);
  EXPECT_EQ(a_seen_by_b.load(), -1);
}

TEST(TaskScheduler, TraceContextPropagatesAcrossSubmit) {
  TaskScheduler scheduler(config_with(2));
  const obs::TraceContext ctx{42, 7, true};
  std::atomic<uint64_t> seen_trace{0};
  std::atomic<uint64_t> seen_parent{0};
  scheduler.submit(
      [&] {
        const obs::TraceContext& c = TaskScheduler::current_context();
        seen_trace = c.trace_id;
        seen_parent = c.parent_span_id;
      },
      ctx);
  scheduler.shutdown();
  EXPECT_EQ(seen_trace.load(), 42u);
  EXPECT_EQ(seen_parent.load(), 7u);
  // Off-task, the context is invalid.
  EXPECT_FALSE(TaskScheduler::current_context().valid());
}

TEST(TaskScheduler, TraceContextPropagatesIntoParallelForChunks) {
  TaskScheduler scheduler(config_with(4));
  const obs::TraceContext ctx{99, 3, true};
  std::atomic<int> traced_chunks{0};
  scheduler.submit(
      [&] {
        scheduler.parallel_for(16, [&](size_t) {
          if (TaskScheduler::current_context().trace_id == 99) {
            traced_chunks.fetch_add(1, std::memory_order_relaxed);
          }
        });
      },
      ctx);
  scheduler.shutdown();
  EXPECT_EQ(traced_chunks.load(), 16);
}

TEST(TaskScheduler, ParallelForCoversEveryIndexExactlyOnce) {
  TaskScheduler scheduler(config_with(4));
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  scheduler.parallel_for(kN, [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskScheduler, ParallelForFromInsideATaskCompletes) {
  // parallel_for is the one sanctioned join point: the caller claims chunks
  // itself, so nesting it inside a task cannot deadlock even when every
  // worker is busy. Saturate the pool to prove it.
  TaskScheduler scheduler(config_with(2));
  std::atomic<int> done{0};
  for (int t = 0; t < 8; ++t) {
    scheduler.submit([&] {
      int local = 0;
      scheduler.parallel_for(32, [&local](size_t) { ++local; });
      if (local == 32) {
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  scheduler.shutdown();
  EXPECT_EQ(done.load(), 8);
}

TEST(TaskScheduler, ShutdownRunsEveryQueuedTask) {
  auto scheduler = std::make_unique<TaskScheduler>(config_with(2));
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) {
    scheduler->submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  scheduler->shutdown();  // Graceful: drains the backlog before joining.
  EXPECT_EQ(ran.load(), 500);
  EXPECT_EQ(scheduler->executed_total(), 500u);
  // Submit after shutdown executes inline on the caller — never dropped.
  std::atomic<int> late{0};
  scheduler->submit([&late] { late = 1; });
  EXPECT_EQ(late.load(), 1);
  scheduler->shutdown();  // Idempotent.
}

TEST(TaskScheduler, RegistersTaskMetricsWhenObsProvided) {
  auto obs = std::make_shared<obs::PipelineObs>();
  SchedulerConfig config = config_with(2);
  config.metrics = obs;
  {
    TaskScheduler scheduler(config);
    scheduler.parallel_for(64, [](size_t) {});
    scheduler.submit([] {});
    scheduler.shutdown();
    const auto snap = obs->registry().snapshot();
    EXPECT_EQ(snap.counters.at("task.queued"), scheduler.queued_total());
    EXPECT_EQ(snap.counters.at("task.stolen"), scheduler.stolen_total());
    EXPECT_EQ(snap.counters.at("task.executed"), scheduler.executed_total());
    uint64_t recorded = 0;
    recorded += snap.histograms.at("task.run_ns.w0").count;
    recorded += snap.histograms.at("task.run_ns.w1").count;
    // Every pool-executed task lands in exactly one worker's histogram
    // (parallel_for chunks the caller claimed are not pool tasks).
    EXPECT_EQ(recorded, scheduler.executed_total());
  }
}

// TSan stress surface: concurrent producers (on- and off-pool), nested
// parallel_for, and a shutdown racing a producer. Run under the tsan CI job.
TEST(TaskStress, ConcurrentProducersAndStealers) {
  TaskScheduler scheduler(config_with(4));
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&scheduler, &ran, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (i % 16 == 0) {
          scheduler.submit_to(static_cast<unsigned>(p) % 4,
                              [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        } else {
          scheduler.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
  EXPECT_EQ(scheduler.executed_total(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
}

TEST(TaskStress, ShutdownRacesProducer) {
  for (int round = 0; round < 20; ++round) {
    auto scheduler = std::make_unique<TaskScheduler>(config_with(2));
    std::atomic<int> ran{0};
    std::thread producer([&] {
      for (int i = 0; i < 100; ++i) {
        scheduler->submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
    scheduler->shutdown();  // Races the producer; late submits run inline.
    producer.join();
    EXPECT_EQ(ran.load(), 100);
  }
}

TEST(TaskStress, NestedParallelForUnderLoad) {
  TaskScheduler scheduler(config_with(4));
  std::atomic<uint64_t> sum{0};
  scheduler.parallel_for(8, [&](size_t outer) {
    scheduler.parallel_for(64, [&sum, outer](size_t inner) {
      sum.fetch_add(outer * 64 + inner, std::memory_order_relaxed);
    });
  });
  // Sum over outer in [0,8) and inner in [0,64) of outer*64+inner.
  EXPECT_EQ(sum.load(), 512u * 511u / 2);
}

}  // namespace
}  // namespace tagmatch::task

// Pipeline stress and concurrency tests: concurrent producers on
// match_async, interleaved sync/async matching, repeated
// consolidate-and-match cycles, destruction with in-flight work, a larger
// randomized Twitter-workload oracle run, and the same oracle run with a
// randomized fault plan armed (the nightly TSan chaos target). Seeds are
// overridable via TAGMATCH_TEST_SEED (tests/test_seed.h).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "src/common/rng.h"
#include "src/core/tagmatch.h"
#include "src/inject/fault.h"
#include "src/sig/signature_scheme.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"
#include "tests/test_seed.h"

namespace tagmatch {
namespace {

using Key = TagMatch::Key;

TagMatchConfig stress_config() {
  TagMatchConfig c;
  c.num_threads = 3;
  c.num_gpus = 2;
  c.streams_per_gpu = 2;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 256ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 32;
  c.max_partition_size = 128;
  c.batch_timeout = std::chrono::milliseconds(5);
  return c;
}

BloomFilter192 random_filter(Rng& rng, unsigned tags, uint32_t universe = 400) {
  std::vector<workload::TagId> ids;
  for (unsigned i = 0; i < tags; ++i) {
    ids.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(universe))));
  }
  return workload::encode_tags(ids);
}

TEST(PipelineStress, ConcurrentProducers) {
  const uint64_t seed = test::test_seed(100);
  TAGMATCH_SEED_TRACE(seed);
  TagMatch tm(stress_config());
  Rng rng(seed);
  for (int i = 0; i < 1000; ++i) {
    tm.add_set(random_filter(rng, 2), static_cast<Key>(i));
  }
  tm.consolidate();

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng prng(seed + 100 + static_cast<uint64_t>(p));
      for (int i = 0; i < kPerProducer; ++i) {
        tm.match_async(random_filter(prng, 5), TagMatch::MatchKind::kMatch,
                       [&done](std::vector<Key>) { done++; });
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  tm.flush();
  EXPECT_EQ(done.load(), kProducers * kPerProducer);
}

TEST(PipelineStress, SyncMatchInterleavedWithAsync) {
  TagMatch tm(stress_config());
  std::vector<std::string> s = {"alpha", "beta"};
  tm.add_set(s, 7);
  tm.consolidate();
  std::vector<std::string> q = {"alpha", "beta", "gamma"};
  std::atomic<int> async_done{0};
  for (int round = 0; round < 20; ++round) {
    tm.match_async(BloomFilter192(sig::resolve(nullptr).encode(q)), TagMatch::MatchKind::kMatch,
                   [&async_done](std::vector<Key>) { async_done++; });
    EXPECT_EQ(tm.match(q), (std::vector<Key>{7}));
  }
  tm.flush();
  EXPECT_EQ(async_done.load(), 20);
}

TEST(PipelineStress, RepeatedConsolidateCycles) {
  const uint64_t seed = test::test_seed(300);
  TAGMATCH_SEED_TRACE(seed);
  TagMatch tm(stress_config());
  Rng rng(seed);
  std::vector<std::string> probe = {"probe"};
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 200; ++i) {
      tm.add_set(random_filter(rng, 3), static_cast<Key>(cycle * 1000 + i));
    }
    tm.add_set(probe, static_cast<Key>(90000 + cycle));
    tm.consolidate();
    // The probe added in every cycle so far must be found.
    std::vector<std::string> q = {"probe", "extra"};
    auto keys = tm.match_unique(q);
    EXPECT_EQ(keys.size(), static_cast<size_t>(cycle + 1));
  }
}

TEST(PipelineStress, DestructionWithInFlightQueries) {
  // The destructor must flush and join cleanly even with queries in flight.
  std::atomic<int> done{0};
  {
    const uint64_t seed = test::test_seed(400);
    TAGMATCH_SEED_TRACE(seed);
    TagMatch tm(stress_config());
    Rng rng(seed);
    for (int i = 0; i < 500; ++i) {
      tm.add_set(random_filter(rng, 2), static_cast<Key>(i));
    }
    tm.consolidate();
    for (int i = 0; i < 300; ++i) {
      tm.match_async(random_filter(rng, 6), TagMatch::MatchKind::kMatchUnique,
                     [&done](std::vector<Key>) { done++; });
    }
    // No flush: the destructor is responsible.
  }
  EXPECT_EQ(done.load(), 300);
}

TEST(PipelineStress, LargeTwitterWorkloadOracle) {
  const uint64_t seed = test::test_seed(555);
  TAGMATCH_SEED_TRACE(seed);
  workload::WorkloadConfig wc;
  wc.num_users = 3000;
  wc.num_publishers = 800;
  wc.vocabulary_size = 5000;
  wc.seed = seed;
  workload::TwitterWorkload w(wc);
  auto db = w.generate_database();
  auto queries = w.generate_queries(db, 400, 2, 4);

  TagMatch tm(stress_config());
  // The engine stores (filter, key) pairs set-wise; mirror that in the
  // oracle or duplicate database entries would inflate its expected count.
  std::vector<std::pair<BitVector192, Key>> oracle_entries;
  std::set<std::pair<std::string, Key>> oracle_seen;
  for (const auto& op : db) {
    BloomFilter192 f = workload::encode_tags(op.tags);
    tm.add_set(f, op.key);
    if (oracle_seen.emplace(f.bits().to_string(), op.key).second) {
      oracle_entries.emplace_back(f.bits(), op.key);
    }
  }
  tm.consolidate();

  std::atomic<uint64_t> engine_total{0};
  std::vector<BitVector192> encoded;
  for (const auto& q : queries) {
    encoded.push_back(workload::encode_tags(q.tags).bits());
  }
  uint64_t oracle_total = 0;
  for (const auto& q : encoded) {
    for (const auto& [f, k] : oracle_entries) {
      oracle_total += f.subset_of(q) ? 1 : 0;
    }
  }
  for (const auto& q : encoded) {
    tm.match_async(BloomFilter192(q), TagMatch::MatchKind::kMatch,
                   [&engine_total](std::vector<Key> keys) { engine_total += keys.size(); });
  }
  tm.flush();
  EXPECT_EQ(engine_total.load(), oracle_total);
  EXPECT_GE(tm.stats().batches_submitted, 1u);
}

TEST(PipelineStress, TimeoutDeliversWithoutFlush) {
  // With a batch timeout, queries must complete even if no one calls
  // flush() and batches never fill.
  TagMatchConfig config = stress_config();
  config.batch_size = 256;  // Never fills with a handful of queries.
  config.batch_timeout = std::chrono::milliseconds(5);
  TagMatch tm(config);
  std::vector<std::string> s = {"x"};
  tm.add_set(s, 1);
  tm.consolidate();
  std::atomic<int> done{0};
  std::vector<std::string> q = {"x", "y"};
  for (int i = 0; i < 5; ++i) {
    tm.match_async(BloomFilter192(sig::resolve(nullptr).encode(q)), TagMatch::MatchKind::kMatch,
                   [&done](std::vector<Key> keys) {
                     EXPECT_EQ(keys.size(), 1u);
                     done++;
                   });
  }
  // Wait on the timeout path only.
  for (int spins = 0; spins < 2000 && done.load() < 5; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done.load(), 5);
}

TEST(PipelineStress, FaultInjectedOracleUnderConcurrency) {
  // The nightly chaos CI job runs this under TSan with a random logged
  // TAGMATCH_TEST_SEED: a randomized fault plan is armed while concurrent
  // producers push an oracle workload. Faults are repaired inside the engine
  // (retry / re-dispatch to the surviving device / CPU fallback), so the
  // delivered key totals must equal the brute-force oracle exactly.
  const uint64_t seed = test::test_seed(4242);
  TAGMATCH_SEED_TRACE(seed);
  inject::FaultPlan plan = inject::FaultPlan::random(seed);
  SCOPED_TRACE("fault plan: " + plan.to_spec());

  TagMatchConfig config = stress_config();
  config.fault_injector = std::make_shared<inject::FaultInjector>(plan);
  config.quarantine_period = std::chrono::milliseconds(5);
  TagMatch tm(config);

  Rng rng(seed * 31 + 7);
  std::vector<std::pair<BitVector192, Key>> entries;
  for (int i = 0; i < 600; ++i) {
    BloomFilter192 f = random_filter(rng, 2);
    tm.add_set(f, static_cast<Key>(i));
    entries.emplace_back(f.bits(), static_cast<Key>(i));
  }
  tm.consolidate();

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 150;
  std::vector<std::vector<BitVector192>> queries(kProducers);
  uint64_t oracle_total = 0;
  for (int p = 0; p < kProducers; ++p) {
    Rng prng(seed + 1000 + static_cast<uint64_t>(p));
    for (int i = 0; i < kPerProducer; ++i) {
      BitVector192 q = random_filter(prng, 5).bits();
      queries[p].push_back(q);
      for (const auto& [f, k] : entries) {
        oracle_total += f.subset_of(q) ? 1 : 0;
      }
    }
  }

  std::atomic<uint64_t> engine_total{0};
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const auto& q : queries[p]) {
        tm.match_async(BloomFilter192(q), TagMatch::MatchKind::kMatch,
                       [&](std::vector<Key> keys) {
                         engine_total += keys.size();
                         done++;
                       });
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  tm.flush();
  EXPECT_EQ(done.load(), kProducers * kPerProducer);
  EXPECT_EQ(engine_total.load(), oracle_total);
  // The workload is big enough that the plan's transient rule (after < 64)
  // always trips at least once.
  EXPECT_GT(config.fault_injector->faults_fired(), 0u);
}

}  // namespace
}  // namespace tagmatch

// Tests for the engine's extension features:
//  * exact-check mode (§3's optional exact subset verification),
//  * index persistence (save_index / load_index),
//  * multi-GPU tagset-table partitioning (§3's partitioned-table mode).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/common/rng.h"
#include "src/core/tagmatch.h"
#include "src/sig/signature_scheme.h"
#include "src/workload/tags.h"

namespace tagmatch {
namespace {

using Key = TagMatch::Key;

TagMatchConfig small_config() {
  TagMatchConfig c;
  c.num_threads = 2;
  c.num_gpus = 2;
  c.streams_per_gpu = 2;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 256ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 16;
  c.max_partition_size = 64;
  return c;
}

// Encode under the engine's resolved scheme (these configs leave
// signature_scheme unset, so TAGMATCH_SCHEME picks the same scheme the
// engine uses). BloomFilter192::of is always bloom192 and silently
// mismatches other schemes.
BloomFilter192 enc(const std::vector<std::string>& tags) {
  return BloomFilter192(sig::resolve(nullptr).encode(tags));
}

std::vector<Key> sorted(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ----------------------------------------------------------------- exact check

TEST(ExactCheck, RejectsInjectedFalsePositive) {
  // Construct a guaranteed bitwise false positive: register a set under a
  // *filter* that is bitwise-contained in the query's filter, but whose tag
  // hashes are disjoint from the query's. Without the exact check the key
  // comes back; with it, it must not.
  BloomFilter192 fake_subset;  // One bit, chosen inside the query's filter.
  std::vector<std::string> qtags = {"alpha", "beta", "gamma"};
  BloomFilter192 qf = enc(qtags);
  BitVector192 one_bit;
  one_bit.set(qf.bits().leftmost_one());
  fake_subset = BloomFilter192(one_bit);
  const uint64_t unrelated_hash = TagMatch::tag_hash("something-else");

  for (bool exact : {false, true}) {
    TagMatchConfig config = small_config();
    config.exact_check = exact;
    TagMatch tm(config);
    tm.add_set_hashed(fake_subset, std::span(&unrelated_hash, 1), 7);
    tm.consolidate();
    auto keys = tm.match(qtags);
    if (exact) {
      EXPECT_TRUE(keys.empty());
      EXPECT_EQ(tm.stats().exact_rejections, 1u);
    } else {
      EXPECT_EQ(keys, (std::vector<Key>{7}));
    }
  }
}

TEST(ExactCheck, TruePositivesUnaffected) {
  TagMatchConfig config = small_config();
  config.exact_check = true;
  TagMatch tm(config);
  std::vector<std::string> s1 = {"a", "b"};
  std::vector<std::string> s2 = {"c"};
  tm.add_set(s1, 1);
  tm.add_set(s2, 2);
  tm.consolidate();
  std::vector<std::string> q = {"a", "b", "c"};
  EXPECT_EQ(sorted(tm.match(q)), (std::vector<Key>{1, 2}));
  EXPECT_EQ(tm.stats().exact_rejections, 0u);
}

TEST(ExactCheck, FilterOnlySetsSkipVerification) {
  // A set registered without tags cannot be verified and must behave as in
  // non-exact mode.
  TagMatchConfig config = small_config();
  config.exact_check = true;
  TagMatch tm(config);
  std::vector<std::string> s = {"x"};
  tm.add_set(enc(s), 5);  // Filter-only.
  tm.consolidate();
  std::vector<std::string> q = {"x", "y"};
  EXPECT_EQ(tm.match(q), (std::vector<Key>{5}));
}

TEST(ExactCheck, FilterOnlyQueriesSkipVerification) {
  TagMatchConfig config = small_config();
  config.exact_check = true;
  TagMatch tm(config);
  std::vector<std::string> s = {"x"};
  tm.add_set(s, 5);
  tm.consolidate();
  std::vector<std::string> q = {"x", "y"};
  // Query submitted as a bare filter: no hashes to verify against.
  EXPECT_EQ(tm.match(enc(q)), (std::vector<Key>{5}));
}

TEST(ExactCheck, HashedApiRoundTrip) {
  TagMatchConfig config = small_config();
  config.exact_check = true;
  TagMatch tm(config);
  using workload::TagId;
  std::vector<TagId> tags = {workload::make_hashtag(0, 1), workload::make_hashtag(0, 2)};
  std::vector<uint64_t> hashes;
  for (TagId t : tags) {
    hashes.push_back(mix64(t));
  }
  tm.add_set_hashed(workload::encode_tags(tags), hashes, 9);
  tm.consolidate();

  std::vector<TagId> qtags = tags;
  qtags.push_back(workload::make_hashtag(0, 3));
  std::vector<uint64_t> qhashes;
  for (TagId t : qtags) {
    qhashes.push_back(mix64(t));
  }
  std::vector<Key> got;
  tm.match_async_hashed(workload::encode_tags(qtags), qhashes, TagMatch::MatchKind::kMatch,
                        [&](std::vector<Key> keys) { got = std::move(keys); });
  tm.flush();
  EXPECT_EQ(got, (std::vector<Key>{9}));
}

// ----------------------------------------------------------------- persistence

class PersistenceTest : public ::testing::Test {
 protected:
  // Unique per test: ctest runs each case as its own concurrent process.
  std::string path_ = ::testing::TempDir() + "/tagmatch_index_" +
                      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(PersistenceTest, SaveLoadRoundTrip) {
  Rng rng(77);
  std::vector<std::pair<BloomFilter192, Key>> entries;
  {
    TagMatch tm(small_config());
    for (int i = 0; i < 400; ++i) {
      std::vector<workload::TagId> tags;
      for (int t = 0; t < 3; ++t) {
        tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(200))));
      }
      BloomFilter192 f = workload::encode_tags(tags);
      entries.emplace_back(f, static_cast<Key>(i));
      tm.add_set(f, static_cast<Key>(i));
    }
    tm.consolidate();
    ASSERT_TRUE(tm.save_index(path_));
  }

  TagMatch loaded(small_config());
  ASSERT_TRUE(loaded.load_index(path_));
  EXPECT_EQ(loaded.stats().total_keys, 400u);
  EXPECT_GT(loaded.stats().partitions, 0u);

  // Queries against the loaded index match a freshly built engine.
  TagMatch fresh(small_config());
  for (const auto& [f, k] : entries) {
    fresh.add_set(f, k);
  }
  fresh.consolidate();
  for (int iter = 0; iter < 30; ++iter) {
    BitVector192 q = entries[rng.below(entries.size())].first.bits();
    for (int e = 0; e < 15; ++e) {
      q.set(static_cast<unsigned>(rng.below(192)));
    }
    EXPECT_EQ(sorted(loaded.match(BloomFilter192(q))), sorted(fresh.match(BloomFilter192(q))));
  }
}

TEST_F(PersistenceTest, LoadedIndexSupportsFurtherUpdates) {
  {
    TagMatch tm(small_config());
    std::vector<std::string> s = {"a"};
    tm.add_set(s, 1);
    tm.consolidate();
    ASSERT_TRUE(tm.save_index(path_));
  }
  TagMatch tm(small_config());
  ASSERT_TRUE(tm.load_index(path_));
  std::vector<std::string> q = {"a", "b"};
  EXPECT_EQ(tm.match(q), (std::vector<Key>{1}));

  std::vector<std::string> s2 = {"b"};
  tm.add_set(s2, 2);
  std::vector<std::string> s1 = {"a"};
  tm.remove_set(s1, 1);
  tm.consolidate();
  EXPECT_EQ(tm.match(q), (std::vector<Key>{2}));
}

TEST_F(PersistenceTest, ExactHashesSurviveSaveLoad) {
  TagMatchConfig config = small_config();
  config.exact_check = true;
  BloomFilter192 fake;
  BitVector192 bit;
  std::vector<std::string> qtags = {"p", "q", "r"};
  bit.set(enc(qtags).bits().leftmost_one());
  fake = BloomFilter192(bit);
  const uint64_t h = TagMatch::tag_hash("unrelated");
  {
    TagMatch tm(config);
    tm.add_set_hashed(fake, std::span(&h, 1), 3);
    tm.consolidate();
    ASSERT_TRUE(tm.save_index(path_));
  }
  TagMatch tm(config);
  ASSERT_TRUE(tm.load_index(path_));
  EXPECT_TRUE(tm.match(qtags).empty());  // Still exact-rejected after load.
  EXPECT_EQ(tm.stats().exact_rejections, 1u);
}

TEST_F(PersistenceTest, RejectsCorruptFiles) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not an index";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  TagMatch tm(small_config());
  EXPECT_FALSE(tm.load_index(path_));
  EXPECT_FALSE(tm.load_index(path_ + ".does-not-exist"));
}

// ------------------------------------------------------- table partitioning

TEST(GpuTablePartitioning, MatchesReplicatedResults) {
  Rng rng(31);
  std::vector<std::pair<BloomFilter192, Key>> entries;
  for (int i = 0; i < 500; ++i) {
    std::vector<workload::TagId> tags;
    for (int t = 0; t < 2; ++t) {
      tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(150))));
    }
    entries.emplace_back(workload::encode_tags(tags), static_cast<Key>(rng.below(100)));
  }

  TagMatchConfig rep_config = small_config();
  TagMatchConfig part_config = small_config();
  part_config.gpu_table_mode = TagMatchConfig::GpuTableMode::kPartition;
  TagMatch replicated(rep_config);
  TagMatch partitioned(part_config);
  for (const auto& [f, k] : entries) {
    replicated.add_set(f, k);
    partitioned.add_set(f, k);
  }
  replicated.consolidate();
  partitioned.consolidate();

  for (int iter = 0; iter < 40; ++iter) {
    BitVector192 q = entries[rng.below(entries.size())].first.bits();
    for (int e = 0; e < 20; ++e) {
      q.set(static_cast<unsigned>(rng.below(192)));
    }
    EXPECT_EQ(sorted(replicated.match(BloomFilter192(q))),
              sorted(partitioned.match(BloomFilter192(q))));
    EXPECT_EQ(replicated.match_unique(BloomFilter192(q)),
              partitioned.match_unique(BloomFilter192(q)));
  }
}

TEST(GpuTablePartitioning, UsesLessMemoryPerDevice) {
  Rng rng(32);
  TagMatchConfig rep_config = small_config();
  rep_config.max_partition_size = 32;
  TagMatchConfig part_config = rep_config;
  part_config.gpu_table_mode = TagMatchConfig::GpuTableMode::kPartition;
  TagMatch replicated(rep_config);
  TagMatch partitioned(part_config);
  for (int i = 0; i < 2000; ++i) {
    std::vector<workload::TagId> tags;
    for (int t = 0; t < 3; ++t) {
      tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(3000))));
    }
    BloomFilter192 f = workload::encode_tags(tags);
    replicated.add_set(f, static_cast<Key>(i));
    partitioned.add_set(f, static_cast<Key>(i));
  }
  replicated.consolidate();
  partitioned.consolidate();
  // With 2 devices, the partitioned table stores each set once instead of
  // twice: total device memory must be clearly smaller.
  EXPECT_LT(partitioned.stats().gpu_bytes, replicated.stats().gpu_bytes);
}

}  // namespace
}  // namespace tagmatch

// Death tests: API misuse must fail fast on TAGMATCH_CHECK rather than
// corrupt state.
#include <gtest/gtest.h>

#include "src/core/gpu_engine.h"
#include "src/core/tagmatch.h"
#include "src/gpusim/device.h"
#include "src/gpusim/stream.h"

namespace tagmatch {
namespace {

class DeathTestEnv : public ::testing::Test {
 protected:
  DeathTestEnv() { ::testing::FLAGS_gtest_death_test_style = "threadsafe"; }
};

TEST_F(DeathTestEnv, BatchSizeMustFitQueryIdByte) {
  TagMatchConfig config;
  config.batch_size = 257;  // Query ids are 8 bits.
  EXPECT_DEATH({ TagMatch tm(config); }, "CHECK failed");
}

TEST_F(DeathTestEnv, ZeroBatchSizeRejected) {
  TagMatchConfig config;
  config.batch_size = 0;
  EXPECT_DEATH({ TagMatch tm(config); }, "CHECK failed");
}

TEST_F(DeathTestEnv, ZeroThreadsRejected) {
  TagMatchConfig config;
  config.num_threads = 0;
  EXPECT_DEATH({ TagMatch tm(config); }, "CHECK failed");
}

TEST_F(DeathTestEnv, StreamLimitEnforced) {
  EXPECT_DEATH(
      {
        gpusim::DeviceConfig c;
        c.max_streams = 1;
        c.num_sms = 1;
        c.costs.enforce = false;
        gpusim::Device dev(c);
        gpusim::Stream s1(&dev);
        gpusim::Stream s2(&dev);  // One too many.
      },
      "CHECK failed");
}

TEST_F(DeathTestEnv, SubmitWithoutUploadRejected) {
  EXPECT_DEATH(
      {
        TagMatchConfig config;
        config.num_gpus = 1;
        config.streams_per_gpu = 1;
        config.gpu_sms_per_device = 1;
        config.gpu_memory_capacity = 64 << 20;
        config.gpu_costs.enforce = false;
        GpuEngine engine(config, [](void*, std::span<const ResultPair>, bool) {});
        BitVector192 q;
        q.set(1);
        std::vector<BitVector192> queries{q};
        engine.submit(0, queries, nullptr);  // No table uploaded.
      },
      "CHECK failed");
}

TEST_F(DeathTestEnv, OversizedGpuAllocationAborts) {
  EXPECT_DEATH(
      {
        gpusim::DeviceConfig c;
        c.memory_capacity = 1 << 20;
        c.num_sms = 1;
        c.costs.enforce = false;
        gpusim::Device dev(c);
        gpusim::DeviceBuffer buf = dev.alloc(2 << 20);  // alloc (not try_alloc) aborts.
      },
      "CHECK failed");
}

}  // namespace
}  // namespace tagmatch

// Death tests for genuine programmer-error invariants: API misuse must fail
// fast on TAGMATCH_CHECK rather than corrupt state. Runtime conditions that
// a correct program can hit — device OOM, stream-limit exhaustion, injected
// faults — are NOT death material anymore: they return status (see the
// StatusReturns suite below and tests/chaos_test.cc for the recovery paths).
#include <gtest/gtest.h>

#include "src/core/gpu_engine.h"
#include "src/core/tagmatch.h"
#include "src/gpusim/device.h"
#include "src/gpusim/kernel.h"
#include "src/gpusim/stream.h"
#include "src/inject/fault.h"

namespace tagmatch {
namespace {

class DeathTestEnv : public ::testing::Test {
 protected:
  DeathTestEnv() { ::testing::FLAGS_gtest_death_test_style = "threadsafe"; }
};

TEST_F(DeathTestEnv, BatchSizeMustFitQueryIdByte) {
  TagMatchConfig config;
  config.batch_size = 257;  // Query ids are 8 bits.
  EXPECT_DEATH({ TagMatch tm(config); }, "CHECK failed");
}

TEST_F(DeathTestEnv, ZeroBatchSizeRejected) {
  TagMatchConfig config;
  config.batch_size = 0;
  EXPECT_DEATH({ TagMatch tm(config); }, "CHECK failed");
}

TEST_F(DeathTestEnv, ZeroThreadsRejected) {
  TagMatchConfig config;
  config.num_threads = 0;
  EXPECT_DEATH({ TagMatch tm(config); }, "CHECK failed");
}

TEST_F(DeathTestEnv, SubmitWithoutUploadRejected) {
  EXPECT_DEATH(
      {
        TagMatchConfig config;
        config.num_gpus = 1;
        config.streams_per_gpu = 1;
        config.gpu_sms_per_device = 1;
        config.gpu_memory_capacity = 64 << 20;
        config.gpu_costs.enforce = false;
        GpuEngine engine(config, [](void*, std::span<const ResultPair>, bool) {});
        BitVector192 q;
        q.set(1);
        std::vector<BitVector192> queries{q};
        engine.submit(0, queries, nullptr);  // No table uploaded.
      },
      "CHECK failed");
}

TEST_F(DeathTestEnv, MalformedKernelLaunchAborts) {
  EXPECT_DEATH(
      {
        gpusim::DeviceConfig c;
        c.num_sms = 1;
        c.costs.enforce = false;
        gpusim::Device dev(c);
        gpusim::LaunchConfig launch;
        launch.grid_dim = 1;
        launch.block_dim = 0;  // A zero-thread block is a programming error.
        gpusim::execute_grid(&dev, launch, [](gpusim::BlockContext&) {});
      },
      "CHECK failed");
}

// --- Status-returning error paths (previously fatal, now recoverable) ---

gpusim::DeviceConfig small_device() {
  gpusim::DeviceConfig c;
  c.memory_capacity = 1 << 20;
  c.num_sms = 1;
  c.max_streams = 1;
  c.costs.enforce = false;
  return c;
}

TEST(StatusReturns, OversizedAllocationReturnsInvalidBuffer) {
  gpusim::Device dev(small_device());
  gpusim::DeviceBuffer buf = dev.alloc(2 << 20);
  EXPECT_FALSE(buf.valid());
  EXPECT_EQ(dev.memory_used(), 0u);
  // The device is healthy; a fitting allocation still succeeds.
  gpusim::DeviceBuffer ok = dev.alloc(1 << 10);
  EXPECT_TRUE(ok.valid());
}

TEST(StatusReturns, StreamOverLimitIsInoperableNotFatal) {
  gpusim::Device dev(small_device());
  gpusim::Stream s1(&dev);
  EXPECT_TRUE(s1.ok());
  gpusim::Stream s2(&dev);  // One over max_streams = 1.
  EXPECT_FALSE(s2.ok());
  EXPECT_EQ(dev.stream_count(), 1u);
  // Every operation on the dead stream is a harmless no-op; nothing hangs.
  std::vector<int> data{1, 2, 3};
  gpusim::DeviceBuffer buf = dev.alloc(sizeof(int) * 3);
  s2.memcpy_h2d(buf.data(), data.data(), sizeof(int) * 3);
  s2.synchronize();
  auto event = std::make_shared<gpusim::Event>();
  s2.record(event);
  event->wait();  // Signalled immediately on a dead stream.
  EXPECT_EQ(s2.take_error(), gpusim::OpError::kNone);
}

TEST(StatusReturns, LostDeviceFailsAllocAndOps) {
  gpusim::Device dev(small_device());
  dev.mark_lost();
  EXPECT_TRUE(dev.lost());
  EXPECT_FALSE(dev.alloc(16).valid());
}

TEST(StatusReturns, InjectedCopyFaultLatchesAndClears) {
  gpusim::DeviceConfig c = small_device();
  auto plan = inject::FaultPlan::parse("h2d:after=0,count=1");
  ASSERT_TRUE(plan.has_value());
  c.injector = std::make_shared<inject::FaultInjector>(*plan);
  gpusim::Device dev(c);
  gpusim::Stream stream(&dev);
  gpusim::DeviceBuffer buf = dev.alloc(sizeof(int) * 4);
  ASSERT_TRUE(buf.valid());
  std::vector<int> src{1, 2, 3, 4};
  stream.memcpy_h2d(buf.data(), src.data(), sizeof(int) * 4);  // Injected failure.
  stream.synchronize();
  EXPECT_EQ(stream.take_error(), gpusim::OpError::kCopyFailed);
  EXPECT_EQ(stream.take_error(), gpusim::OpError::kNone);  // Consumed.
  // The rule was count=1: the next copy goes through and round-trips.
  std::vector<int> dst(4, 0);
  stream.memcpy_h2d(buf.data(), src.data(), sizeof(int) * 4);
  stream.memcpy_d2h(dst.data(), buf.data(), sizeof(int) * 4);
  stream.synchronize();
  EXPECT_EQ(stream.take_error(), gpusim::OpError::kNone);
  EXPECT_EQ(src, dst);
}

TEST(StatusReturns, PoisonedCycleSkipsDownstreamOps) {
  gpusim::DeviceConfig c = small_device();
  auto plan = inject::FaultPlan::parse("h2d:after=0,count=1");
  ASSERT_TRUE(plan.has_value());
  c.injector = std::make_shared<inject::FaultInjector>(*plan);
  gpusim::Device dev(c);
  gpusim::Stream stream(&dev);
  gpusim::DeviceBuffer buf = dev.alloc(sizeof(int) * 4);
  std::vector<int> src{7, 7, 7, 7};
  std::vector<int> dst(4, -1);
  // H2D fails; the dependent D2H of the same cycle must not run and leak
  // stale device bytes into dst.
  stream.memcpy_h2d(buf.data(), src.data(), sizeof(int) * 4);
  stream.memcpy_d2h(dst.data(), buf.data(), sizeof(int) * 4);
  stream.synchronize();
  EXPECT_EQ(stream.take_error(), gpusim::OpError::kCopyFailed);
  EXPECT_EQ(dst, std::vector<int>(4, -1));
}

TEST(StatusReturns, DeviceLossRuleMarksDeviceLost) {
  gpusim::DeviceConfig c = small_device();
  auto plan = inject::FaultPlan::parse("devloss:after=0");
  ASSERT_TRUE(plan.has_value());
  c.injector = std::make_shared<inject::FaultInjector>(*plan);
  gpusim::Device dev(c);
  gpusim::Stream stream(&dev);
  gpusim::DeviceBuffer buf = dev.alloc(16);  // First counted op trips the loss.
  EXPECT_FALSE(buf.valid());
  EXPECT_TRUE(dev.lost());
  int x = 0;
  stream.memcpy_d2h(&x, &x, 0);
  stream.synchronize();
  EXPECT_EQ(stream.take_error(), gpusim::OpError::kDeviceLost);
}

TEST(StatusReturns, FaultPlanSpecRoundTrips) {
  const std::string spec = "h2d:after=5,count=2;devloss:after=100,count=1,dev=0";
  auto plan = inject::FaultPlan::parse(spec);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->rules.size(), 2u);
  EXPECT_EQ(plan->rules[0].site, inject::FaultSite::kH2D);
  EXPECT_EQ(plan->rules[0].after, 5u);
  EXPECT_EQ(plan->rules[0].count, 2u);
  EXPECT_EQ(plan->rules[1].site, inject::FaultSite::kDeviceLoss);
  EXPECT_EQ(plan->rules[1].device, 0);
  auto reparsed = inject::FaultPlan::parse(plan->to_spec());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->to_spec(), plan->to_spec());
  // Malformed specs are rejected, not half-parsed.
  EXPECT_FALSE(inject::FaultPlan::parse("warp:after=1").has_value());
  EXPECT_FALSE(inject::FaultPlan::parse("h2d:after").has_value());
  EXPECT_FALSE(inject::FaultPlan::parse("h2d:after=x").has_value());
  EXPECT_FALSE(inject::FaultPlan::parse("h2d:bogus=1").has_value());
}

}  // namespace
}  // namespace tagmatch

#include "src/baselines/subset_enum/subset_enum.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace tagmatch::baselines {
namespace {

using Key = uint32_t;
using TagId = workload::TagId;

std::vector<Key> sorted(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SubsetEnum, BasicMatching) {
  SubsetEnumMatcher m;
  m.add({1, 2}, 10);
  m.add({2}, 20);
  m.add({3}, 30);
  m.build();
  auto r = m.match({1, 2, 4});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(sorted(r.keys), (std::vector<Key>{10, 20}));
  // 3 distinct query tags -> 8 subset probes.
  EXPECT_EQ(r.probes, 8u);
}

TEST(SubsetEnum, EmptySetMatchesEverything) {
  SubsetEnumMatcher m;
  m.add({}, 1);
  m.build();
  auto r = m.match({5, 6});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.keys, (std::vector<Key>{1}));
  auto r2 = m.match({});
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r2.keys, (std::vector<Key>{1}));
}

TEST(SubsetEnum, DuplicateSetsKeepAllKeys) {
  SubsetEnumMatcher m;
  m.add({7, 8}, 1);
  m.add({8, 7}, 2);  // Same set, different order.
  m.build();
  EXPECT_EQ(m.size(), 1u);
  auto r = m.match({7, 8, 9});
  EXPECT_EQ(sorted(r.keys), (std::vector<Key>{1, 2}));
}

TEST(SubsetEnum, RefusesHugeQueries) {
  SubsetEnumMatcher m;
  m.add({1}, 1);
  m.build();
  std::vector<TagId> big;
  for (TagId t = 0; t < SubsetEnumMatcher::kMaxQueryTags + 1; ++t) {
    big.push_back(t);
  }
  EXPECT_FALSE(m.match(big).ok);
}

TEST(SubsetEnum, ProbesGrowExponentially) {
  SubsetEnumMatcher m;
  m.add({1}, 1);
  m.build();
  std::vector<TagId> q;
  uint64_t prev = 0;
  for (TagId t = 0; t < 12; ++t) {
    q.push_back(100 + t);
    auto r = m.match(q);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.probes, uint64_t{1} << q.size());
    EXPECT_GT(r.probes, prev);
    prev = r.probes;
  }
}

TEST(SubsetEnum, AgreesWithBruteForceRandomized) {
  Rng rng(61);
  std::vector<std::pair<std::vector<TagId>, Key>> db;
  SubsetEnumMatcher m;
  for (int i = 0; i < 300; ++i) {
    std::vector<TagId> tags;
    unsigned n = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned t = 0; t < n; ++t) {
      tags.push_back(static_cast<TagId>(rng.below(40)));
    }
    std::sort(tags.begin(), tags.end());
    tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
    Key key = static_cast<Key>(i);
    db.emplace_back(tags, key);
    m.add(tags, key);
  }
  m.build();
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<TagId> q;
    unsigned n = 1 + static_cast<unsigned>(rng.below(8));
    for (unsigned t = 0; t < n; ++t) {
      q.push_back(static_cast<TagId>(rng.below(40)));
    }
    std::vector<Key> expected;
    for (const auto& [tags, key] : db) {
      bool subset = true;
      for (TagId t : tags) {
        if (std::find(q.begin(), q.end(), t) == q.end()) {
          subset = false;
          break;
        }
      }
      if (subset) {
        expected.push_back(key);
      }
    }
    auto r = m.match(q);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(sorted(r.keys), sorted(std::move(expected)));
  }
}

}  // namespace
}  // namespace tagmatch::baselines

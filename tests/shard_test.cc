// Tests for the sharded serving layer (src/shard): routing, scatter-gather
// equivalence with a single engine, the exactly-once callback contract,
// concurrent consolidation, aggregated stats, manifest persistence with
// resharding on load, and the degraded-result (timeout) contract.
#include "src/shard/sharded_tagmatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/tagmatch.h"
#include "src/workload/tags.h"

namespace tagmatch {
namespace {

using Key = Matcher::Key;
using shard::KeyHashPolicy;
using shard::ShardedConfig;
using shard::ShardedTagMatch;
using shard::SignatureHashPolicy;
using workload::TagId;

TagMatchConfig engine_config() {
  TagMatchConfig c;
  c.num_threads = 2;
  c.num_gpus = 1;
  c.streams_per_gpu = 2;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 128ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 16;
  c.max_partition_size = 32;
  return c;
}

ShardedConfig sharded_config(unsigned shards) {
  ShardedConfig c;
  c.num_shards = shards;
  c.shard = engine_config();
  return c;
}

std::vector<Key> sorted(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

BitVector192 random_filter(Rng& rng, uint32_t universe, unsigned max_tags) {
  std::vector<TagId> tags;
  unsigned n = 1 + static_cast<unsigned>(rng.below(max_tags));
  for (unsigned i = 0; i < n; ++i) {
    tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(universe))));
  }
  return workload::encode_tags(tags).bits();
}

// A small random database with duplicate keys (so multiset vs unique
// matching differ), loaded into both engines.
struct Workload {
  std::vector<std::pair<BitVector192, Key>> entries;
  std::vector<BitVector192> queries;

  explicit Workload(uint64_t seed, int n_entries = 300, int n_queries = 40) {
    Rng rng(seed);
    const uint32_t universe = 120;
    for (int i = 0; i < n_entries; ++i) {
      entries.emplace_back(random_filter(rng, universe, 3), static_cast<Key>(rng.below(60)));
    }
    for (int i = 0; i < n_queries; ++i) {
      BitVector192 q = random_filter(rng, universe, 6);
      q |= entries[rng.below(entries.size())].first;  // Guarantee some hits.
      queries.push_back(q);
    }
  }

  void populate(Matcher& m) const {
    for (const auto& [f, k] : entries) {
      m.add_set(BloomFilter192(f), k);
    }
    m.consolidate();
  }

  // Randomly drawn entries can collide; the engine stores (filter, key)
  // pairs set-wise, so key-count assertions must use the distinct count.
  size_t distinct_entries() const {
    std::set<std::pair<std::string, Key>> seen;
    for (const auto& [f, k] : entries) {
      seen.emplace(f.to_string(), k);
    }
    return seen.size();
  }
};

// ------------------------------------------------------ routing & equivalence

TEST(ShardedTagMatch, MatchesSingleEngineMultisets) {
  Workload w(11);
  TagMatch single(engine_config());
  w.populate(single);
  ShardedTagMatch sharded(sharded_config(3));
  w.populate(sharded);

  // The signature hash actually spreads the database.
  auto ss = sharded.shard_stats();
  ASSERT_EQ(ss.per_shard.size(), 3u);
  for (const auto& s : ss.per_shard) {
    EXPECT_GT(s.total_keys, 0u);
  }
  EXPECT_EQ(ss.total.total_keys, w.distinct_entries());

  for (const auto& q : w.queries) {
    EXPECT_EQ(sorted(sharded.match(BloomFilter192(q))), sorted(single.match(BloomFilter192(q))));
    EXPECT_EQ(sharded.match_unique(BloomFilter192(q)), single.match_unique(BloomFilter192(q)));
  }
}

TEST(ShardedTagMatch, KeyHashPolicyAgreesWithSignatureHash) {
  Workload w(12);
  ShardedConfig config = sharded_config(4);
  config.policy = std::make_shared<KeyHashPolicy>();
  ShardedTagMatch by_key(config);
  EXPECT_EQ(std::string(by_key.policy().name()), "key-hash");
  w.populate(by_key);
  ShardedTagMatch by_signature(sharded_config(4));
  EXPECT_EQ(std::string(by_signature.policy().name()), "signature-hash");
  w.populate(by_signature);

  for (const auto& q : w.queries) {
    EXPECT_EQ(sorted(by_key.match(BloomFilter192(q))),
              sorted(by_signature.match(BloomFilter192(q))));
  }
}

TEST(ShardedTagMatch, MatchUniqueDedupsAcrossShards) {
  // Two sets with the same key whose signatures land on different shards:
  // match returns the key twice, match_unique exactly once.
  SignatureHashPolicy policy;
  const Key key = 7;
  BitVector192 f0, f1;
  bool have0 = false, have1 = false;
  for (uint32_t i = 0; i < 64 && (!have0 || !have1); ++i) {
    std::vector<TagId> tags{workload::make_hashtag(0, i)};
    BitVector192 f = workload::encode_tags(tags).bits();
    uint32_t s = policy.shard_of(f, key, 2);
    if (s == 0 && !have0) {
      f0 = f;
      have0 = true;
    } else if (s == 1 && !have1) {
      f1 = f;
      have1 = true;
    }
  }
  ASSERT_TRUE(have0 && have1);

  ShardedTagMatch engine(sharded_config(2));
  engine.add_set(BloomFilter192(f0), key);
  engine.add_set(BloomFilter192(f1), key);
  engine.consolidate();

  BitVector192 q = f0;
  q |= f1;
  EXPECT_EQ(engine.match(BloomFilter192(q)), (std::vector<Key>{key, key}));
  EXPECT_EQ(engine.match_unique(BloomFilter192(q)), (std::vector<Key>{key}));
}

TEST(ShardedTagMatch, CallbacksFireExactlyOncePerQuery) {
  Workload w(13, 120, 25);
  ShardedTagMatch engine(sharded_config(3));
  w.populate(engine);

  std::atomic<int> fired{0};
  const int rounds = 8;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& q : w.queries) {
      engine.match_async(BloomFilter192(q), Matcher::MatchKind::kMatch,
                         [&fired](std::vector<Key>) { fired.fetch_add(1); });
    }
    engine.flush();
  }
  EXPECT_EQ(fired.load(), rounds * static_cast<int>(w.queries.size()));
  auto ss = engine.shard_stats();
  EXPECT_EQ(ss.queries, static_cast<uint64_t>(rounds) * w.queries.size());
  EXPECT_EQ(ss.partial_results, 0u);
  EXPECT_EQ(ss.shards_shed, 0u);
}

// ------------------------------------------------------------- consolidation

TEST(ShardedTagMatch, ConcurrentAndSequentialConsolidateAgree) {
  Workload w(14);
  ShardedTagMatch concurrent(sharded_config(4));
  ShardedConfig sequential_config = sharded_config(4);
  sequential_config.concurrent_consolidate = false;
  ShardedTagMatch sequential(sequential_config);

  w.populate(concurrent);
  w.populate(sequential);
  EXPECT_GT(concurrent.shard_stats().wall_consolidate_seconds, 0.0);
  EXPECT_GT(sequential.shard_stats().wall_consolidate_seconds, 0.0);

  for (const auto& q : w.queries) {
    EXPECT_EQ(sorted(concurrent.match(BloomFilter192(q))),
              sorted(sequential.match(BloomFilter192(q))));
  }
}

// --------------------------------------------------------------------- stats

TEST(MatcherStats, AggregationSumsCountersAndKeepsSlowestRebuild) {
  Matcher::Stats a;
  a.unique_sets = 3;
  a.total_keys = 10;
  a.partitions = 2;
  a.queries_processed = 5;
  a.result_pairs = 7;
  a.host_key_table_bytes = 100;
  a.last_consolidate_seconds = 0.5;
  Matcher::Stats b;
  b.unique_sets = 4;
  b.total_keys = 1;
  b.partitions = 1;
  b.queries_processed = 2;
  b.result_pairs = 3;
  b.host_key_table_bytes = 50;
  b.last_consolidate_seconds = 0.125;

  a += b;
  EXPECT_EQ(a.unique_sets, 7u);
  EXPECT_EQ(a.total_keys, 11u);
  EXPECT_EQ(a.partitions, 3u);
  EXPECT_EQ(a.queries_processed, 7u);
  EXPECT_EQ(a.result_pairs, 10u);
  EXPECT_EQ(a.host_key_table_bytes, 150u);
  // Concurrent rebuild wall time is bounded by the slowest shard: max, not sum.
  EXPECT_DOUBLE_EQ(a.last_consolidate_seconds, 0.5);
}

TEST(ShardedTagMatch, StatsAggregateAcrossShards) {
  Workload w(15);
  ShardedTagMatch engine(sharded_config(3));
  w.populate(engine);
  for (const auto& q : w.queries) {
    engine.match(BloomFilter192(q));
  }
  auto stats = engine.stats();
  EXPECT_EQ(stats.total_keys, w.distinct_entries());
  EXPECT_GT(stats.partitions, 0u);
  // Every query is scattered to all 3 shards.
  EXPECT_EQ(stats.queries_processed, 3 * w.queries.size());
  uint64_t per_shard_keys = 0;
  for (const auto& s : engine.shard_stats().per_shard) {
    per_shard_keys += s.total_keys;
  }
  EXPECT_EQ(per_shard_keys, w.distinct_entries());
}

// --------------------------------------------------------------- persistence

class ShardPersistenceTest : public ::testing::Test {
 protected:
  // Unique per test: ctest runs each case as its own concurrent process.
  std::string path_ = ::testing::TempDir() + "/sharded_index_" +
                      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".bin";
  void TearDown() override {
    std::remove(path_.c_str());
    for (int i = 0; i < 8; ++i) {
      std::remove((path_ + ".shard" + std::to_string(i)).c_str());
    }
  }

  void expect_equivalent(ShardedTagMatch& got, TagMatch& want, const Workload& w) {
    for (const auto& q : w.queries) {
      EXPECT_EQ(sorted(got.match(BloomFilter192(q))), sorted(want.match(BloomFilter192(q))));
    }
  }
};

TEST_F(ShardPersistenceTest, RoundTripSameShardCount) {
  Workload w(16);
  TagMatch reference(engine_config());
  w.populate(reference);
  {
    ShardedTagMatch engine(sharded_config(3));
    w.populate(engine);
    ASSERT_TRUE(engine.save_index(path_));
  }
  ShardedTagMatch loaded(sharded_config(3));
  ASSERT_TRUE(loaded.load_index(path_));
  EXPECT_EQ(loaded.stats().total_keys, w.distinct_entries());
  expect_equivalent(loaded, reference, w);
}

TEST_F(ShardPersistenceTest, ReshardsOnLoadAcrossShardCounts) {
  Workload w(17);
  TagMatch reference(engine_config());
  w.populate(reference);
  {
    ShardedTagMatch engine(sharded_config(3));
    w.populate(engine);
    ASSERT_TRUE(engine.save_index(path_));
  }
  // 3 saved shards load into 2 and into 5; sets are redistributed under the
  // live policy and every shard ends up owning its hash range.
  for (unsigned shards : {2u, 5u}) {
    ShardedTagMatch loaded(sharded_config(shards));
    ASSERT_TRUE(loaded.load_index(path_));
    EXPECT_EQ(loaded.stats().total_keys, w.distinct_entries());
    expect_equivalent(loaded, reference, w);
  }
}

TEST_F(ShardPersistenceTest, LoadedIndexSupportsFurtherUpdates) {
  Workload w(18, 60, 10);
  {
    ShardedTagMatch engine(sharded_config(2));
    w.populate(engine);
    ASSERT_TRUE(engine.save_index(path_));
  }
  ShardedTagMatch engine(sharded_config(4));  // Reshard path.
  ASSERT_TRUE(engine.load_index(path_));
  const auto& [f, k] = w.entries.front();
  engine.remove_set(BloomFilter192(f), k);
  BitVector192 extra = f;
  engine.add_set(BloomFilter192(extra), 9999);
  engine.consolidate();
  auto keys = sorted(engine.match(BloomFilter192(f)));
  EXPECT_TRUE(std::find(keys.begin(), keys.end(), 9999) != keys.end());
  EXPECT_EQ(std::count(keys.begin(), keys.end(), k),
            std::count_if(w.entries.begin(), w.entries.end(),
                          [&](const auto& e) { return e.second == k && e.first.subset_of(f); }) -
                1);
}

TEST_F(ShardPersistenceTest, FailedLoadsLeaveLiveEngineIntact) {
  Workload w(19, 80, 10);
  ShardedTagMatch engine(sharded_config(2));
  w.populate(engine);
  ASSERT_TRUE(engine.save_index(path_));
  const auto probe = BloomFilter192(w.queries.front());
  const auto before = sorted(engine.match(probe));

  // Missing manifest.
  EXPECT_FALSE(engine.load_index(path_ + ".does-not-exist"));

  // Manifest referencing a missing shard file — both the direct-load path
  // (same shard count) and the reshard path must fail cleanly.
  ASSERT_EQ(std::remove((path_ + ".shard1").c_str()), 0);
  EXPECT_FALSE(engine.load_index(path_));
  ShardedTagMatch other(sharded_config(3));
  EXPECT_FALSE(other.load_index(path_));

  // Truncated manifest: keep only the magic, losing the shard count and the
  // file list.
  ASSERT_TRUE(engine.save_index(path_));
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    uint32_t magic = 0;
    ASSERT_EQ(std::fread(&magic, sizeof(magic), 1, f), 1u);
    std::fclose(f);
    f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fclose(f);
  }
  EXPECT_FALSE(engine.load_index(path_));

  // Wrong magic.
  ASSERT_TRUE(engine.save_index(path_));
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const uint32_t junk = 0xdeadbeef;
    std::fwrite(&junk, sizeof(junk), 1, f);
    std::fclose(f);
  }
  EXPECT_FALSE(engine.load_index(path_));

  // The live engine never noticed.
  EXPECT_EQ(sorted(engine.match(probe)), before);
  EXPECT_EQ(engine.stats().total_keys, w.entries.size());
}

// ------------------------------------------------------------------ timeouts

TEST(ShardedTagMatch, TimeoutDeliversPartialResultAndCountsShedShards) {
  // Deterministic stall: batch_timeout is 0 and batch_size is large, so a
  // single async query sits in a partial batch on every shard until flush().
  // The gather timeout must fire first, delivering a degraded (partial)
  // result and counting both shed shards.
  ShardedConfig config = sharded_config(2);
  config.shard.batch_size = 128;
  config.query_timeout = std::chrono::milliseconds(40);
  ShardedTagMatch engine(config);
  Workload w(20, 60, 1);
  w.populate(engine);

  BitVector192 everything;
  for (unsigned i = 0; i < BitVector192::kBits; ++i) {
    everything.set(i);  // Superset of every partition: the query must queue.
  }
  std::promise<ShardedTagMatch::MatchResult> promise;
  auto result = promise.get_future();
  engine.match_result_async(BloomFilter192(everything), Matcher::MatchKind::kMatch,
                            [&promise](ShardedTagMatch::MatchResult r) {
                              promise.set_value(std::move(r));
                            });
  auto r = result.get();
  EXPECT_TRUE(r.partial);
  EXPECT_TRUE(r.keys.empty());  // Neither shard answered in time.

  auto ss = engine.shard_stats();
  EXPECT_EQ(ss.queries, 1u);
  EXPECT_EQ(ss.partial_results, 1u);
  EXPECT_EQ(ss.shards_shed, 2u);

  // Late shard responses are dropped silently: flushing afterwards must not
  // fire the callback a second time (the promise would throw if it did).
  engine.flush();
}

TEST(ShardedTagMatch, NoTimeoutMeansExactResults) {
  ShardedConfig config = sharded_config(2);
  config.query_timeout = std::chrono::milliseconds(5'000);  // Generous.
  ShardedTagMatch engine(config);
  Workload w(21, 100, 15);
  w.populate(engine);
  TagMatch single(engine_config());
  w.populate(single);

  for (const auto& q : w.queries) {
    std::promise<ShardedTagMatch::MatchResult> promise;
    auto result = promise.get_future();
    engine.match_result_async(BloomFilter192(q), Matcher::MatchKind::kMatch,
                              [&promise](ShardedTagMatch::MatchResult r) {
                                promise.set_value(std::move(r));
                              });
    engine.flush();
    auto r = result.get();
    EXPECT_FALSE(r.partial);
    EXPECT_EQ(sorted(std::move(r.keys)), sorted(single.match(BloomFilter192(q))));
  }
  EXPECT_EQ(engine.shard_stats().partial_results, 0u);
}

}  // namespace
}  // namespace tagmatch

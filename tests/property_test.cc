// Parameterized property sweeps (TEST_P) over the core invariants:
//  * partitioner: exact cover, mask containment, size bounds — over a grid
//    of (set count, bits per filter, MAX_P);
//  * Bloom encoding: no false negatives over a grid of set/superset sizes;
//  * packed codec: round trip at many sizes;
//  * pre-process completeness: no matching partition is ever missed.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/bloom/bloom_filter.h"
#include "src/common/rng.h"
#include "src/core/packed_output.h"
#include "src/core/partition_table.h"
#include "src/core/partitioner.h"
#include "src/workload/tags.h"

namespace tagmatch {
namespace {

// ---------------------------------------------------------------- partitioner

using PartitionerParams = std::tuple<int /*n*/, int /*bits*/, int /*max_p*/>;

class PartitionerProperty : public ::testing::TestWithParam<PartitionerParams> {};

TEST_P(PartitionerProperty, CoverMaskAndBalance) {
  auto [n, bits, max_p] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 1000003 + bits * 131 + max_p));
  std::vector<BitVector192> filters(n);
  for (auto& f : filters) {
    for (int b = 0; b < bits; ++b) {
      f.set(static_cast<unsigned>(rng.below(192)));
    }
  }
  auto parts = balance_partitions(filters, static_cast<uint32_t>(max_p));

  // Exact cover.
  std::set<uint32_t> seen;
  for (const auto& p : parts) {
    for (uint32_t m : p.members) {
      EXPECT_TRUE(seen.insert(m).second);
      // Mask containment invariant.
      EXPECT_TRUE(p.mask.subset_of(filters[m]));
    }
    // Oversized partitions are only legal when the members are mutually
    // indistinguishable (identical filters).
    if (p.members.size() > static_cast<size_t>(max_p)) {
      for (uint32_t m : p.members) {
        EXPECT_EQ(filters[m], filters[p.members[0]]);
      }
    }
  }
  EXPECT_EQ(seen.size(), filters.size());
}

INSTANTIATE_TEST_SUITE_P(Grid, PartitionerProperty,
                         ::testing::Combine(::testing::Values(1, 64, 1000, 5000),
                                            ::testing::Values(2, 10, 35, 80),
                                            ::testing::Values(1, 16, 256)),
                         [](const ::testing::TestParamInfo<PartitionerParams>& info) {
                           return "n" + std::to_string(std::get<0>(info.param)) + "_bits" +
                                  std::to_string(std::get<1>(info.param)) + "_maxp" +
                                  std::to_string(std::get<2>(info.param));
                         });

// ------------------------------------------------------------ bloom encoding

using BloomParams = std::tuple<int /*subset size*/, int /*extra*/>;

class BloomNoFalseNegatives : public ::testing::TestWithParam<BloomParams> {};

TEST_P(BloomNoFalseNegatives, SubsetAlwaysImpliesBitwiseSubset) {
  auto [sub_size, extra] = GetParam();
  Rng rng(static_cast<uint64_t>(sub_size * 7919 + extra));
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<workload::TagId> sub, super;
    for (int i = 0; i < sub_size; ++i) {
      sub.push_back(static_cast<workload::TagId>(rng.next()));
    }
    super = sub;
    for (int i = 0; i < extra; ++i) {
      super.push_back(static_cast<workload::TagId>(rng.next()));
    }
    EXPECT_TRUE(workload::encode_tags(sub).subset_of(workload::encode_tags(super)));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BloomNoFalseNegatives,
                         ::testing::Combine(::testing::Values(0, 1, 5, 10, 40),
                                            ::testing::Values(0, 1, 4, 16)),
                         [](const ::testing::TestParamInfo<BloomParams>& info) {
                           return "sub" + std::to_string(std::get<0>(info.param)) + "_extra" +
                                  std::to_string(std::get<1>(info.param));
                         });

// -------------------------------------------------------------- packed codec

class CodecRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CodecRoundTrip, PackedAndUnpacked) {
  const size_t n = static_cast<size_t>(GetParam());
  Rng rng(n * 31 + 7);
  std::vector<ResultPair> pairs(n);
  for (auto& p : pairs) {
    p.query = static_cast<uint8_t>(rng.below(256));
    p.set_id = static_cast<uint32_t>(rng.next());
  }
  std::vector<std::byte> packed(PackedResultCodec::bytes_for(n));
  std::vector<std::byte> unpacked(UnpackedResultCodec::bytes_for(n));
  for (size_t i = 0; i < n; ++i) {
    PackedResultCodec::write(packed.data(), i, pairs[i]);
    UnpackedResultCodec::write(unpacked.data(), i, pairs[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    ResultPair a = PackedResultCodec::read(packed.data(), i);
    ResultPair b = UnpackedResultCodec::read(unpacked.data(), i);
    ASSERT_EQ(a.query, pairs[i].query);
    ASSERT_EQ(a.set_id, pairs[i].set_id);
    ASSERT_EQ(b.query, pairs[i].query);
    ASSERT_EQ(b.set_id, pairs[i].set_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CodecRoundTrip, ::testing::Values(1, 2, 3, 4, 5, 7, 8, 63, 1024));

// ------------------------------------------------- pre-process completeness

class PreProcessCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(PreProcessCompleteness, NoMatchingSetIsMissed) {
  // End-to-end CPU-side property: for random databases and queries, every
  // database filter f ⊆ q must live in a partition forwarded by the
  // partition table.
  const int bits = GetParam();
  Rng rng(static_cast<uint64_t>(bits) * 65537);
  std::vector<BitVector192> filters(1500);
  for (auto& f : filters) {
    for (int b = 0; b < bits; ++b) {
      f.set(static_cast<unsigned>(rng.below(192)));
    }
  }
  auto parts = balance_partitions(filters, 64);
  PartitionTable pt;
  std::vector<std::vector<uint32_t>> members(parts.size());
  for (PartitionId id = 0; id < parts.size(); ++id) {
    pt.add(parts[id].mask, id);
    members[id] = parts[id].members;
  }
  for (int iter = 0; iter < 100; ++iter) {
    BitVector192 q = filters[rng.below(filters.size())];
    for (int e = 0; e < 25; ++e) {
      q.set(static_cast<unsigned>(rng.below(192)));
    }
    std::set<PartitionId> forwarded;
    pt.find_matches(q, [&](PartitionId id) { forwarded.insert(id); });
    for (PartitionId id = 0; id < parts.size(); ++id) {
      if (forwarded.count(id)) {
        continue;
      }
      for (uint32_t m : members[id]) {
        ASSERT_FALSE(filters[m].subset_of(q))
            << "filter in non-forwarded partition matches the query";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BitDensities, PreProcessCompleteness, ::testing::Values(3, 8, 20, 45));

}  // namespace
}  // namespace tagmatch

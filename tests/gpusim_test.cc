#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <numeric>
#include <thread>
#include <vector>

#include "src/gpusim/device.h"
#include "src/gpusim/kernel.h"
#include "src/gpusim/stream.h"

namespace gpusim {
namespace {

DeviceConfig test_config() {
  DeviceConfig c;
  c.memory_capacity = 64 << 20;
  c.num_sms = 2;
  c.max_streams = 4;
  c.costs.enforce = false;  // No artificial delays in unit tests.
  return c;
}

TEST(Device, AllocationAccounting) {
  Device dev(test_config());
  EXPECT_EQ(dev.memory_used(), 0u);
  {
    DeviceBuffer a = dev.alloc(1024);
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(dev.memory_used(), 1024u);
    DeviceBuffer b = dev.alloc(4096);
    EXPECT_EQ(dev.memory_used(), 5120u);
  }
  EXPECT_EQ(dev.memory_used(), 0u);
}

TEST(Device, TryAllocFailsOverCapacity) {
  DeviceConfig c = test_config();
  c.memory_capacity = 1 << 20;
  Device dev(c);
  DeviceBuffer ok = dev.try_alloc(512 << 10);
  EXPECT_TRUE(ok.valid());
  DeviceBuffer too_big = dev.try_alloc(600 << 10);
  EXPECT_FALSE(too_big.valid());
  ok.reset();
  DeviceBuffer now_fits = dev.try_alloc(600 << 10);
  EXPECT_TRUE(now_fits.valid());
}

TEST(Device, BufferMoveTransfersOwnership) {
  Device dev(test_config());
  DeviceBuffer a = dev.alloc(100);
  std::byte* ptr = a.data();
  DeviceBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): move-state check
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(dev.memory_used(), 100u);
}

TEST(Stream, CopiesRoundTrip) {
  Device dev(test_config());
  Stream stream(&dev);
  DeviceBuffer buf = dev.alloc(sizeof(int) * 16);
  std::vector<int> src(16);
  std::iota(src.begin(), src.end(), 0);
  std::vector<int> dst(16, -1);
  stream.memcpy_h2d(buf.data(), src.data(), sizeof(int) * 16);
  stream.memcpy_d2h(dst.data(), buf.data(), sizeof(int) * 16);
  stream.synchronize();
  EXPECT_EQ(src, dst);
}

TEST(Stream, OpsExecuteInFifoOrder) {
  Device dev(test_config());
  Stream stream(&dev);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    stream.callback([&order, i] { order.push_back(i); });
  }
  stream.synchronize();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Stream, EventFiresAfterPriorWork) {
  Device dev(test_config());
  Stream stream(&dev);
  std::atomic<bool> work_done{false};
  stream.callback([&] { work_done = true; });
  auto event = std::make_shared<Event>();
  stream.record(event);
  event->wait();
  EXPECT_TRUE(work_done.load());
  EXPECT_TRUE(event->ready());
}

TEST(Stream, MemsetZeroesDeviceMemory) {
  Device dev(test_config());
  Stream stream(&dev);
  DeviceBuffer buf = dev.alloc(64);
  std::vector<std::byte> out(64);
  stream.memset_d(buf.data(), 0xab, 64);
  stream.memcpy_d2h(out.data(), buf.data(), 64);
  stream.synchronize();
  for (std::byte b : out) {
    EXPECT_EQ(b, std::byte{0xab});
  }
}

TEST(Stream, MaxStreamsEnforced) {
  DeviceConfig c = test_config();
  c.max_streams = 2;
  Device dev(c);
  Stream s1(&dev);
  {
    Stream s2(&dev);
    EXPECT_EQ(dev.stream_count(), 2u);
  }
  // Destroying a stream frees a slot.
  Stream s3(&dev);
  EXPECT_EQ(dev.stream_count(), 2u);
}

TEST(Kernel, GridCoversAllThreads) {
  Device dev(test_config());
  Stream stream(&dev);
  constexpr uint32_t kGrid = 8, kBlock = 32;
  DeviceBuffer buf = dev.alloc(kGrid * kBlock * sizeof(uint32_t));
  LaunchConfig cfg{kGrid, kBlock, 0};
  stream.launch(cfg, [out = buf.as<uint32_t>()](BlockContext& ctx) {
    ctx.threads([&](uint32_t tid) {
      uint32_t gid = ctx.block_first_thread() + tid;
      out[gid] = gid * 3 + 1;
    });
  });
  std::vector<uint32_t> host(kGrid * kBlock);
  stream.memcpy_d2h(host.data(), buf.data(), host.size() * sizeof(uint32_t));
  stream.synchronize();
  for (uint32_t i = 0; i < host.size(); ++i) {
    EXPECT_EQ(host[i], i * 3 + 1);
  }
}

TEST(Kernel, SharedMemoryIsPerBlockAndZeroed) {
  Device dev(test_config());
  Stream stream(&dev);
  constexpr uint32_t kGrid = 16, kBlock = 64;
  DeviceBuffer sums = dev.alloc(kGrid * sizeof(uint64_t));
  LaunchConfig cfg{kGrid, kBlock, sizeof(uint64_t)};
  stream.launch(cfg, [out = sums.as<uint64_t>()](BlockContext& ctx) {
    auto* acc = ctx.shared<uint64_t>();
    // Supersteps: accumulate into shared, then thread 0 publishes. The
    // initial value must be zero.
    ctx.threads([&](uint32_t tid) { *acc += tid; });
    ctx.thread0([&] { out[ctx.block_idx()] = *acc; });
  });
  std::vector<uint64_t> host(kGrid);
  stream.memcpy_d2h(host.data(), sums.data(), host.size() * sizeof(uint64_t));
  stream.synchronize();
  const uint64_t expected = uint64_t{kBlock} * (kBlock - 1) / 2;
  for (uint64_t s : host) {
    EXPECT_EQ(s, expected);
  }
}

TEST(Kernel, GlobalAtomicsAcrossBlocks) {
  Device dev(test_config());
  Stream stream(&dev);
  DeviceBuffer counter = dev.alloc(sizeof(uint64_t));
  stream.memset_d(counter.data(), 0, sizeof(uint64_t));
  constexpr uint32_t kGrid = 64, kBlock = 128;
  LaunchConfig cfg{kGrid, kBlock, 0};
  stream.launch(cfg, [c = counter.as<uint64_t>()](BlockContext& ctx) {
    ctx.threads([&](uint32_t) {
      std::atomic_ref<uint64_t>(*c).fetch_add(1, std::memory_order_relaxed);
    });
  });
  uint64_t result = 0;
  stream.memcpy_d2h(&result, counter.data(), sizeof(result));
  stream.synchronize();
  EXPECT_EQ(result, uint64_t{kGrid} * kBlock);
}

TEST(Kernel, MultipleStreamsShareDevice) {
  Device dev(test_config());
  Stream s1(&dev), s2(&dev);
  DeviceBuffer counter = dev.alloc(sizeof(uint64_t));
  std::memset(counter.data(), 0, sizeof(uint64_t));
  LaunchConfig cfg{16, 64, 0};
  auto kernel = [c = counter.as<uint64_t>()](BlockContext& ctx) {
    ctx.threads([&](uint32_t) {
      std::atomic_ref<uint64_t>(*c).fetch_add(1, std::memory_order_relaxed);
    });
  };
  s1.launch(cfg, kernel);
  s2.launch(cfg, kernel);
  s1.synchronize();
  s2.synchronize();
  uint64_t result = 0;
  std::memcpy(&result, counter.data(), sizeof(result));
  EXPECT_EQ(result, 2 * uint64_t{16} * 64);
}

TEST(Kernel, DynamicParallelismChildGrid) {
  Device dev(test_config());
  Stream stream(&dev);
  DeviceBuffer counter = dev.alloc(sizeof(uint64_t));
  stream.memset_d(counter.data(), 0, sizeof(uint64_t));
  LaunchConfig cfg{2, 4, 0};
  stream.launch(cfg, [c = counter.as<uint64_t>()](BlockContext& parent) {
    parent.thread0([&] {
      parent.launch_child(3, 8, 0, [&](BlockContext& child) {
        child.threads([&](uint32_t) {
          std::atomic_ref<uint64_t>(*c).fetch_add(1, std::memory_order_relaxed);
        });
      });
    });
  });
  uint64_t result = 0;
  stream.memcpy_d2h(&result, counter.data(), sizeof(result));
  stream.synchronize();
  // 2 parent blocks each launch a 3x8 child grid.
  EXPECT_EQ(result, 2u * 3 * 8);
}

TEST(CostModel, CopyTimeScalesWithBytes) {
  CostModel costs;
  EXPECT_EQ(costs.copy_ns(0, true), 0);
  EXPECT_GT(costs.copy_ns(1 << 20, true), 0);
  EXPECT_LT(costs.copy_ns(1 << 10, true), costs.copy_ns(1 << 20, true));
}

TEST(CostModel, EnforcedDelaysAreObservable) {
  DeviceConfig c = test_config();
  c.costs.enforce = true;
  c.costs.api_call_overhead_ns = 200000;  // 200us, measurable.
  Device dev(c);
  Stream stream(&dev);
  DeviceBuffer buf = dev.alloc(8);
  uint64_t v = 0;
  auto start = std::chrono::steady_clock::now();
  stream.memcpy_h2d(buf.data(), &v, 8);
  stream.synchronize();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(), 150);
}

}  // namespace
}  // namespace gpusim

namespace gpusim {
namespace {

TEST(Stream, WaitEventOrdersAcrossStreams) {
  Device dev(test_config());
  Stream producer(&dev), consumer(&dev);
  std::atomic<int> value{0};
  auto ready = std::make_shared<Event>();
  // Consumer's op must observe the producer's write even though it was
  // enqueued first.
  consumer.wait_event(ready);
  std::atomic<int> observed{-1};
  consumer.callback([&] { observed = value.load(); });
  producer.callback([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    value = 42;
  });
  producer.record(ready);
  consumer.synchronize();
  EXPECT_EQ(observed.load(), 42);
}

TEST(Profiler, RecordsOpsAndBytes) {
  DeviceConfig c = test_config();
  c.enable_profiling = true;
  Device dev(c);
  Stream stream(&dev);
  DeviceBuffer buf = dev.alloc(1024);
  std::vector<std::byte> host(1024);
  stream.memcpy_h2d(buf.data(), host.data(), 1024);
  stream.launch(LaunchConfig{2, 32, 0}, [](BlockContext& ctx) {
    ctx.threads([](uint32_t) {});
  });
  stream.memcpy_d2h(host.data(), buf.data(), 512);
  stream.synchronize();

  ASSERT_NE(dev.profiler(), nullptr);
  auto s = dev.profiler()->summary();
  EXPECT_EQ(s.op_count, 3u);
  EXPECT_EQ(s.h2d_bytes, 1024u);
  EXPECT_EQ(s.d2h_bytes, 512u);
  EXPECT_GT(s.kernel_ns, 0);
  EXPECT_GT(s.span_ns, 0);
}

TEST(Profiler, DisabledByDefault) {
  Device dev(test_config());
  EXPECT_EQ(dev.profiler(), nullptr);
}

TEST(Profiler, DetectsCrossStreamOverlap) {
  DeviceConfig c = test_config();
  c.enable_profiling = true;
  c.num_sms = 2;
  Device dev(c);
  Stream s1(&dev), s2(&dev);
  auto busy = [] {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
    }
  };
  s1.callback(busy);
  s2.callback(busy);
  s1.synchronize();
  s2.synchronize();
  auto s = dev.profiler()->summary();
  // Two 20 ms host funcs on independent streams must overlap substantially.
  EXPECT_GT(s.concurrent_ns, 5'000'000);
}

TEST(Profiler, WritesChromeTrace) {
  DeviceConfig c = test_config();
  c.enable_profiling = true;
  Device dev(c);
  Stream stream(&dev);
  DeviceBuffer buf = dev.alloc(64);
  stream.memset_d(buf.data(), 0, 64);
  stream.synchronize();
  std::string path = ::testing::TempDir() + "/gpusim_trace.json";
  ASSERT_TRUE(dev.profiler()->write_chrome_trace(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("memset"), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpusim

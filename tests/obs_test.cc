// Tests for the observability layer (src/obs): instrument semantics,
// snapshot merge algebra, concurrent recording, the trace ring, and the
// contract that every metric name the code registers is documented in
// docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/broker/broker.h"
#include "src/common/thread_pool.h"
#include "src/core/tagmatch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/shard/sharded_tagmatch.h"

namespace tagmatch::obs {
namespace {

// ------------------------------------------------------------- instruments

TEST(Obs, CounterAndGauge) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(Obs, HistogramBucketLayout) {
  EXPECT_EQ(histogram_bucket_index(0), 0u);
  EXPECT_EQ(histogram_bucket_index(1), 1u);
  EXPECT_EQ(histogram_bucket_index(2), 2u);
  EXPECT_EQ(histogram_bucket_index(3), 2u);
  EXPECT_EQ(histogram_bucket_index(4), 3u);
  EXPECT_EQ(histogram_bucket_index(UINT64_MAX), kHistogramBuckets - 1);
  // Every bucket's bounds contain exactly its values.
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_EQ(histogram_bucket_index(histogram_bucket_lower(i)), i);
    EXPECT_EQ(histogram_bucket_index(histogram_bucket_upper(i) - 1), i);
  }
}

TEST(Obs, HistogramRecordAndPercentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.record(v);
  }
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_NEAR(s.mean(), 500.5, 1e-9);
  // Power-of-two buckets bound the relative error at 2x; interpolation
  // usually does much better. Accept the bucket-resolution tolerance.
  EXPECT_GT(s.percentile(50), 250);
  EXPECT_LT(s.percentile(50), 1000);
  EXPECT_LE(s.percentile(99), 1000);
  // Percentiles are monotone in p and clamped to [min, max].
  EXPECT_LE(s.percentile(0), s.percentile(50));
  EXPECT_LE(s.percentile(50), s.percentile(99));
  EXPECT_GE(s.percentile(0), static_cast<double>(s.min));
  EXPECT_LE(s.percentile(100), static_cast<double>(s.max));
}

TEST(Obs, EmptyHistogramSnapshot) {
  Histogram h;
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.percentile(50), 0);
}

// ------------------------------------------------------------ merge algebra

HistogramSnapshot hist_of(std::initializer_list<uint64_t> values) {
  Histogram h;
  for (uint64_t v : values) {
    h.record(v);
  }
  return h.snapshot();
}

bool same(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  return a.count == b.count && a.sum == b.sum && a.min == b.min && a.max == b.max &&
         a.buckets == b.buckets;
}

TEST(Obs, HistogramMergeIsAssociative) {
  HistogramSnapshot a = hist_of({1, 2, 3});
  HistogramSnapshot b = hist_of({100, 200});
  HistogramSnapshot c = hist_of({7});
  HistogramSnapshot ab_c = a;
  ab_c += b;
  ab_c += c;
  HistogramSnapshot bc = b;
  bc += c;
  HistogramSnapshot a_bc = a;
  a_bc += bc;
  EXPECT_TRUE(same(ab_c, a_bc));
  EXPECT_EQ(ab_c.count, 6u);
  EXPECT_EQ(ab_c.min, 1u);
  EXPECT_EQ(ab_c.max, 200u);
}

TEST(Obs, HistogramMergeWithEmptySides) {
  HistogramSnapshot a = hist_of({5, 9});
  HistogramSnapshot empty;
  HistogramSnapshot left = empty;
  left += a;
  HistogramSnapshot right = a;
  right += empty;
  EXPECT_TRUE(same(left, a));
  EXPECT_TRUE(same(right, a));
  EXPECT_EQ(left.min, 5u);  // Empty side must not contribute its min = 0.
}

TEST(Obs, MetricsSnapshotMergeIsAssociative) {
  Registry ra, rb, rc;
  ra.counter("x")->add(1);
  ra.histogram("h")->record(10);
  rb.counter("x")->add(2);
  rb.counter("y")->add(5);
  rb.gauge("g")->set(3);
  rc.histogram("h")->record(1000);
  rc.gauge("g")->set(4);

  MetricsSnapshot a = ra.snapshot(), b = rb.snapshot(), c = rc.snapshot();
  MetricsSnapshot ab_c = a;
  ab_c += b;
  ab_c += c;
  MetricsSnapshot bc = b;
  bc += c;
  MetricsSnapshot a_bc = a;
  a_bc += bc;

  EXPECT_EQ(ab_c.counters, a_bc.counters);
  EXPECT_EQ(ab_c.gauges, a_bc.gauges);
  ASSERT_EQ(ab_c.histograms.size(), a_bc.histograms.size());
  for (const auto& [name, h] : ab_c.histograms) {
    ASSERT_TRUE(a_bc.histograms.count(name));
    EXPECT_TRUE(same(h, a_bc.histograms.at(name))) << name;
  }
  EXPECT_EQ(ab_c.counters.at("x"), 3u);
  EXPECT_EQ(ab_c.counters.at("y"), 5u);
  EXPECT_EQ(ab_c.histograms.at("h").count, 2u);
}

// Sum-vs-last gauge aggregation: sharded share-of-total gauges (the default,
// kSum) add across registries, point-in-time gauges (kLast) must NOT — two
// healthy devices are not health 2, and a scheme id is not additive.
TEST(Obs, PointGaugesMergeLastNotSum) {
  Registry ra, rb;
  ra.gauge("engine.unique_sets")->set(100);  // kSum default: shares add.
  rb.gauge("engine.unique_sets")->set(50);
  ra.gauge("device.health.0", GaugeMode::kLast)->set(1);
  rb.gauge("device.health.0", GaugeMode::kLast)->set(1);
  ra.gauge("sig.scheme_id", GaugeMode::kLast)->set(3);
  rb.gauge("sig.scheme_id", GaugeMode::kLast)->set(3);

  MetricsSnapshot merged = ra.snapshot();
  merged += rb.snapshot();
  EXPECT_EQ(merged.gauges.at("engine.unique_sets"), 150);
  EXPECT_EQ(merged.gauges.at("device.health.0"), 1);  // Not 2.
  EXPECT_EQ(merged.gauges.at("sig.scheme_id"), 3);    // Not 6.

  // The mode is sticky: a later registration without the argument must not
  // silently flip an existing gauge back to summing.
  ra.gauge("device.health.0")->set(1);
  MetricsSnapshot again = ra.snapshot();
  again += rb.snapshot();
  EXPECT_EQ(again.gauges.at("device.health.0"), 1);
}

// ------------------------------------------------------- concurrent recording

TEST(Obs, ConcurrentRecordingIsExact) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20'000;
  Registry registry;
  Counter* counter = registry.counter("c");
  Histogram* hist = registry.histogram("h");
  ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](size_t t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      counter->inc();
      hist->record(t * kPerThread + i + 1);
    }
  });
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  HistogramSnapshot s = hist->snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, s.count);
}

TEST(Obs, RegistryReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.counter("same");
  Counter* b = registry.counter("same");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("other"), a);
  auto names = registry.names();
  EXPECT_EQ(names, (std::vector<std::string>{"other", "same"}));
}

// ------------------------------------------------------------------ tracing

TEST(Obs, TracerRingKeepsNewest) {
  Tracer tracer(4);
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.record(Span{i, Stage::kKernel, static_cast<int64_t>(i), static_cast<int64_t>(i + 1)});
  }
  EXPECT_EQ(tracer.total_recorded(), 10u);
  auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first insertion order of the surviving (newest) spans.
  EXPECT_EQ(spans.front().id, 6u);
  EXPECT_EQ(spans.back().id, 9u);
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Obs, SpanNestingRecordsInnerAndOuter) {
  // An outer stage span containing a nested inner stage (the shape the
  // engine produces: reduce wraps the overflow re-match; gather wraps
  // per-shard merges). Both must land, with the nesting visible in the
  // timestamps.
  PipelineObs obs;
  {
    StageTimer outer(&obs, Stage::kReduce, 1);
    {
      StageTimer inner(&obs, Stage::kGather, 1);
    }
  }
  auto spans = obs.tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner stops first, so it is recorded first.
  EXPECT_EQ(spans[0].stage, Stage::kGather);
  EXPECT_EQ(spans[1].stage, Stage::kReduce);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
  // And the stage histograms saw one sample each.
  auto snap = obs.registry().snapshot();
  EXPECT_EQ(snap.histograms.at("stage.reduce_ns").count, 1u);
  EXPECT_EQ(snap.histograms.at("stage.gather_ns").count, 1u);
}

TEST(Obs, StageNamesAndMetricNames) {
  EXPECT_STREQ(stage_name(Stage::kPreFilter), "prefilter");
  EXPECT_STREQ(stage_metric_name(Stage::kKernel), "stage.kernel_ns");
  // PipelineObs pre-registers every stage histogram.
  PipelineObs obs;
  auto names = obs.registry().names();
  for (size_t i = 0; i < kNumStages; ++i) {
    const char* metric = stage_metric_name(static_cast<Stage>(i));
    EXPECT_NE(std::find(names.begin(), names.end(), metric), names.end()) << metric;
  }
}

// ---------------------------------------------------------------- renderers

TEST(Obs, JsonRenderersAreSingleLine) {
  Registry registry;
  registry.counter("engine.queries_processed")->add(3);
  registry.gauge("engine.partitions")->set(12);
  registry.histogram("stage.kernel_ns")->record(1500);
  std::string json = registry.snapshot().to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"engine.queries_processed\":3"), std::string::npos);
  EXPECT_NE(json.find("\"engine.partitions\":12"), std::string::npos);
  EXPECT_NE(json.find("\"stage.kernel_ns\":{\"count\":1"), std::string::npos);

  std::vector<Span> spans{{7, Stage::kH2D, 100, 250}};
  std::string trace = spans_to_json(spans);
  EXPECT_EQ(trace.find('\n'), std::string::npos);
  EXPECT_EQ(trace.front(), '[');
  EXPECT_EQ(trace.back(), ']');
  EXPECT_NE(trace.find("\"stage\":\"h2d\""), std::string::npos);
  EXPECT_NE(trace.find("\"duration_ns\":150"), std::string::npos);

  EXPECT_EQ(spans_to_json({}), "[]");
  // limit keeps only the newest spans.
  std::vector<Span> many{{1, Stage::kKernel, 0, 1}, {2, Stage::kKernel, 1, 2},
                         {3, Stage::kKernel, 2, 3}};
  std::string limited = spans_to_json(many, 1);
  EXPECT_EQ(limited.find("\"id\":1"), std::string::npos);
  EXPECT_NE(limited.find("\"id\":3"), std::string::npos);
}

// -------------------------------------------------- doc-diff (OBSERVABILITY)

TagMatchConfig tiny_engine_config() {
  TagMatchConfig config;
  config.num_threads = 1;
  // Pin the pool to one worker explicitly: the doc-diff inventory below must
  // not depend on a TAGMATCH_WORKERS value in the environment (extra workers
  // would register task.run_ns.w1, w2, ... — documented as a family).
  config.num_workers = 1;
  config.num_gpus = 1;
  config.streams_per_gpu = 1;
  config.gpu_sms_per_device = 1;
  config.gpu_memory_capacity = 64ull << 20;
  config.gpu_costs.enforce = false;
  config.batch_size = 4;
  config.max_partition_size = 16;
  return config;
}

// Real engine registries carry the kLast annotation: a 1-GPU engine merged
// with itself (the sharded path) must still report per-device health <= 1
// and an unchanged scheme id, while share-of-total gauges double.
TEST(Obs, EngineGaugesMergeByDeclaredMode) {
  TagMatch engine(tiny_engine_config());
  engine.add_set(std::vector<std::string>{"a"}, 1);
  engine.consolidate();
  MetricsSnapshot e = engine.metrics_snapshot();
  MetricsSnapshot doubled = e;
  doubled += e;
  for (const auto& [name, v] : doubled.gauges) {
    if (name.rfind("device.health.", 0) == 0) {
      EXPECT_LE(v, 1) << name << " summed across registries";
      EXPECT_EQ(v, e.gauges.at(name)) << name;
    }
  }
  EXPECT_EQ(doubled.gauges.at("sig.scheme_id"), e.gauges.at("sig.scheme_id"));
  EXPECT_EQ(doubled.gauges.at("engine.unique_sets"),
            2 * e.gauges.at("engine.unique_sets"));
}

// Every metric name any layer registers must appear (backticked) in
// docs/OBSERVABILITY.md. Constructing the engines registers the full
// inventory: TagMatch covers engine.*, stage.*, query.latency_ns and (via
// its devices) gpusim.*; ShardedTagMatch adds shard.*; Broker adds broker.*.
TEST(Obs, EveryRegisteredMetricIsDocumented) {
  std::set<std::string> names;

  {
    TagMatch engine(tiny_engine_config());
    engine.add_set(std::vector<std::string>{"a", "b"}, 1);
    engine.consolidate();
    engine.match(std::vector<std::string>{"a", "b", "c"});
    for (const auto& [name, v] : engine.metrics_snapshot().counters) {
      names.insert(name);
    }
    auto snap = engine.metrics_snapshot();
    for (const auto& [name, v] : snap.gauges) names.insert(name);
    for (const auto& [name, v] : snap.histograms) names.insert(name);
  }
  {
    shard::ShardedConfig config;
    config.num_shards = 2;
    config.shard = tiny_engine_config();
    shard::ShardedTagMatch sharded(config);
    auto snap = sharded.metrics_snapshot();
    for (const auto& [name, v] : snap.counters) names.insert(name);
    for (const auto& [name, v] : snap.gauges) names.insert(name);
    for (const auto& [name, v] : snap.histograms) names.insert(name);
  }
  {
    broker::BrokerConfig config;
    config.engine = tiny_engine_config();
    config.engine.match_staged_adds = true;
    config.consolidate_interval = std::chrono::milliseconds(0);
    broker::Broker broker(config);
    auto snap = broker.metrics_snapshot();
    for (const auto& [name, v] : snap.counters) names.insert(name);
    for (const auto& [name, v] : snap.gauges) names.insert(name);
    for (const auto& [name, v] : snap.histograms) names.insert(name);
  }

  ASSERT_GE(names.size(), 25u);  // The full inventory, not a stub registry.

  // The task-pool instruments are registered eagerly by every scheduler
  // (engine pools and the shard router pool), so they must be in the
  // inventory — and therefore documented below like everything else.
  EXPECT_EQ(names.count("task.queued"), 1u);
  EXPECT_EQ(names.count("task.stolen"), 1u);
  EXPECT_EQ(names.count("task.executed"), 1u);
  EXPECT_EQ(names.count("task.run_ns.w0"), 1u);

  std::ifstream doc(std::string(TAGMATCH_SOURCE_DIR) + "/docs/OBSERVABILITY.md");
  ASSERT_TRUE(doc.is_open()) << "docs/OBSERVABILITY.md missing";
  std::stringstream buffer;
  buffer << doc.rdbuf();
  const std::string text = buffer.str();
  for (const auto& name : names) {
    EXPECT_NE(text.find("`" + name + "`"), std::string::npos)
        << "metric `" << name << "` is registered but not documented in docs/OBSERVABILITY.md";
  }
}

}  // namespace
}  // namespace tagmatch::obs

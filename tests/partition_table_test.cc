#include "src/core/partition_table.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/core/partitioner.h"

namespace tagmatch {
namespace {

TEST(PartitionTable, EmptyTableMatchesNothing) {
  PartitionTable pt;
  BitVector192 q;
  q.set(3);
  int calls = 0;
  pt.find_matches(q, [&](PartitionId) { calls++; });
  EXPECT_EQ(calls, 0);
}

TEST(PartitionTable, EmptyMaskAlwaysMatches) {
  PartitionTable pt;
  pt.add(BitVector192(), 7);
  int calls = 0;
  PartitionId seen = 0;
  pt.find_matches(BitVector192(), [&](PartitionId id) {
    calls++;
    seen = id;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 7u);
}

TEST(PartitionTable, SubsetMasksMatch) {
  PartitionTable pt;
  BitVector192 m1;
  m1.set(5);
  BitVector192 m2;
  m2.set(5);
  m2.set(100);
  BitVector192 m3;
  m3.set(150);
  pt.add(m1, 1);
  pt.add(m2, 2);
  pt.add(m3, 3);

  BitVector192 q;
  q.set(5);
  q.set(100);
  std::set<PartitionId> hits;
  pt.find_matches(q, [&](PartitionId id) { hits.insert(id); });
  EXPECT_EQ(hits, (std::set<PartitionId>{1, 2}));
}

TEST(PartitionTable, EachMatchReportedOnce) {
  // A mask with many one-bits lives in exactly one bucket (leftmost one-bit),
  // so it must be reported exactly once even if the query has all its bits.
  PartitionTable pt;
  BitVector192 m;
  m.set(10);
  m.set(20);
  m.set(30);
  pt.add(m, 42);
  BitVector192 q = m;
  q.set(50);
  int calls = 0;
  pt.find_matches(q, [&](PartitionId id) {
    EXPECT_EQ(id, 42u);
    calls++;
  });
  EXPECT_EQ(calls, 1);
}

TEST(PartitionTable, AgreesWithLinearScanRandomized) {
  Rng rng(21);
  std::vector<BitVector192> masks;
  PartitionTable pt;
  for (PartitionId id = 0; id < 300; ++id) {
    BitVector192 m;
    unsigned nbits = 1 + static_cast<unsigned>(rng.below(6));
    for (unsigned i = 0; i < nbits; ++i) {
      m.set(static_cast<unsigned>(rng.below(192)));
    }
    masks.push_back(m);
    pt.add(m, id);
  }
  EXPECT_EQ(pt.partition_count(), 300u);

  for (int iter = 0; iter < 200; ++iter) {
    BitVector192 q;
    unsigned nbits = static_cast<unsigned>(rng.below(60));
    for (unsigned i = 0; i < nbits; ++i) {
      q.set(static_cast<unsigned>(rng.below(192)));
    }
    std::set<PartitionId> expected;
    for (PartitionId id = 0; id < masks.size(); ++id) {
      if (masks[id].subset_of(q)) {
        expected.insert(id);
      }
    }
    std::multiset<PartitionId> got;
    pt.find_matches(q, [&](PartitionId id) { got.insert(id); });
    // No duplicates and exact agreement.
    EXPECT_EQ(got.size(), expected.size());
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin(), got.end()));
  }
}

TEST(PartitionTable, IntegratesWithPartitioner) {
  // Build partitions from random filters, index their masks, and verify the
  // pre-process invariant: every partition containing a subset of q is
  // forwarded.
  Rng rng(22);
  std::vector<BitVector192> filters(2000);
  for (auto& f : filters) {
    for (int i = 0; i < 12; ++i) {
      f.set(static_cast<unsigned>(rng.below(192)));
    }
  }
  auto parts = balance_partitions(filters, 100);
  PartitionTable pt;
  for (PartitionId id = 0; id < parts.size(); ++id) {
    pt.add(parts[id].mask, id);
  }
  for (int iter = 0; iter < 50; ++iter) {
    BitVector192 q = filters[rng.below(filters.size())];
    for (int i = 0; i < 20; ++i) {
      q.set(static_cast<unsigned>(rng.below(192)));
    }
    std::set<PartitionId> forwarded;
    pt.find_matches(q, [&](PartitionId id) { forwarded.insert(id); });
    for (PartitionId id = 0; id < parts.size(); ++id) {
      for (uint32_t m : parts[id].members) {
        if (filters[m].subset_of(q)) {
          EXPECT_TRUE(forwarded.count(id)) << "partition with a match was not forwarded";
        }
      }
    }
  }
}

TEST(PartitionTable, MemoryAccountingGrows) {
  PartitionTable pt;
  uint64_t before = pt.memory_bytes();
  for (PartitionId id = 0; id < 1000; ++id) {
    BitVector192 m;
    m.set(id % 192);
    pt.add(m, id);
  }
  EXPECT_GT(pt.memory_bytes(), before);
}

}  // namespace
}  // namespace tagmatch

// Tests for the match_staged_adds extension: staged (un-consolidated) adds
// become immediately matchable via a linear scan of the temporary index.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/tagmatch.h"
#include "src/sig/signature_scheme.h"

namespace tagmatch {
namespace {

using Key = TagMatch::Key;

TagMatchConfig live_config() {
  TagMatchConfig c;
  c.num_threads = 2;
  c.num_gpus = 1;
  c.streams_per_gpu = 2;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 128ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 8;
  c.max_partition_size = 32;
  c.match_staged_adds = true;
  return c;
}

std::vector<Key> sorted(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(StagedMatching, StagedAddsMatchImmediately) {
  TagMatch tm(live_config());
  std::vector<std::string> s = {"a", "b"};
  tm.add_set(s, 1);
  std::vector<std::string> q = {"a", "b", "c"};
  // No consolidate yet — the temporary index must serve the match.
  EXPECT_EQ(tm.match(q), (std::vector<Key>{1}));
}

TEST(StagedMatching, StagedAndConsolidatedCombine) {
  TagMatch tm(live_config());
  std::vector<std::string> s1 = {"a"};
  tm.add_set(s1, 1);
  tm.consolidate();
  std::vector<std::string> s2 = {"b"};
  tm.add_set(s2, 2);  // Staged only.
  std::vector<std::string> q = {"a", "b"};
  EXPECT_EQ(sorted(tm.match(q)), (std::vector<Key>{1, 2}));
  // After consolidation the same results come from the main index.
  tm.consolidate();
  EXPECT_EQ(sorted(tm.match(q)), (std::vector<Key>{1, 2}));
}

TEST(StagedMatching, NoDoubleCountingAfterConsolidate) {
  TagMatch tm(live_config());
  std::vector<std::string> s = {"x"};
  tm.add_set(s, 5);
  tm.consolidate();
  std::vector<std::string> q = {"x", "y"};
  // The set must not be matched twice (once staged + once consolidated).
  EXPECT_EQ(tm.match(q), (std::vector<Key>{5}));
}

TEST(StagedMatching, DisabledByDefault) {
  TagMatchConfig config = live_config();
  config.match_staged_adds = false;
  TagMatch tm(config);
  std::vector<std::string> s = {"a"};
  tm.add_set(s, 1);
  std::vector<std::string> q = {"a", "b"};
  EXPECT_TRUE(tm.match(q).empty());
}

TEST(StagedMatching, ExactCheckAppliesToStagedSets) {
  TagMatchConfig config = live_config();
  config.exact_check = true;
  TagMatch tm(config);
  // Inject a bitwise false positive into the staged index: a one-bit filter
  // inside the query's filter but with an unrelated tag hash.
  std::vector<std::string> qtags = {"alpha", "beta"};
  // Plant the bit under the engine's resolved scheme: the query is encoded
  // with it, so a bloom192-derived bit would miss under other schemes.
  BitVector192 bit;
  bit.set(sig::resolve(config.signature_scheme).encode(qtags).leftmost_one());
  const uint64_t h = TagMatch::tag_hash("unrelated");
  tm.add_set_hashed(BloomFilter192(bit), std::span(&h, 1), 9);
  EXPECT_TRUE(tm.match(qtags).empty());
  EXPECT_EQ(tm.stats().exact_rejections, 1u);
}

TEST(StagedMatching, MatchUniqueDedupesAcrossStagedAndMain) {
  TagMatch tm(live_config());
  std::vector<std::string> s1 = {"a"};
  tm.add_set(s1, 7);
  tm.consolidate();
  std::vector<std::string> s2 = {"b"};
  tm.add_set(s2, 7);  // Same key, staged.
  std::vector<std::string> q = {"a", "b"};
  EXPECT_EQ(tm.match(q).size(), 2u);
  EXPECT_EQ(tm.match_unique(q), (std::vector<Key>{7}));
}

}  // namespace
}  // namespace tagmatch

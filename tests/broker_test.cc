#include "src/broker/broker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace tagmatch::broker {
namespace {

using Tags = std::vector<std::string>;

BrokerConfig test_config() {
  BrokerConfig c;
  c.engine.num_threads = 2;
  c.engine.num_gpus = 1;
  c.engine.streams_per_gpu = 2;
  c.engine.gpu_sms_per_device = 1;
  c.engine.gpu_memory_capacity = 128ull << 20;
  c.engine.gpu_costs.enforce = false;
  c.engine.batch_size = 8;
  c.engine.max_partition_size = 32;
  c.engine.batch_timeout = std::chrono::milliseconds(2);
  c.consolidate_interval = std::chrono::milliseconds(0);  // Manual via flush().
  return c;
}

TEST(Broker, PublishReachesMatchingSubscriber) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"sports", "football"});
  broker.publish(Message{Tags{"sports", "football", "worldcup"}, "goal!"});
  broker.flush();
  auto msg = broker.poll(alice);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "goal!");
  EXPECT_FALSE(broker.poll(alice).has_value());
}

TEST(Broker, NonMatchingMessageNotDelivered) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"sports", "football"});
  broker.publish(Message{Tags{"music"}, "concert"});
  broker.publish(Message{Tags{"sports"}, "partial overlap only"});
  broker.flush();
  EXPECT_EQ(broker.pending(alice), 0u);
}

TEST(Broker, SubscriptionEffectiveImmediatelyWithoutConsolidate) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"alerts"});
  // No flush/consolidate between subscribe and publish: the temporary index
  // must serve it.
  broker.publish(Message{Tags{"alerts", "disk"}, "disk full"});
  auto msg = broker.poll_wait(alice, std::chrono::milliseconds(2000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "disk full");
}

TEST(Broker, OverlappingSubscriptionsDeliverOnce) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"a"});
  broker.subscribe(alice, Tags{"b"});
  broker.subscribe(alice, Tags{"a", "b"});
  broker.publish(Message{Tags{"a", "b", "c"}, "once"});
  broker.flush();
  EXPECT_EQ(broker.pending(alice), 1u);
}

TEST(Broker, MultipleSubscribersEachGetACopy) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  SubscriberId bob = broker.connect();
  broker.subscribe(alice, Tags{"news"});
  broker.subscribe(bob, Tags{"news"});
  broker.publish(Message{Tags{"news", "tech"}, "story"});
  broker.flush();
  EXPECT_EQ(broker.pending(alice), 1u);
  EXPECT_EQ(broker.pending(bob), 1u);
}

TEST(Broker, UnsubscribeStopsDeliveryImmediately) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  SubscriptionId sub = broker.subscribe(alice, Tags{"x"});
  broker.publish(Message{Tags{"x", "y"}, "m1"});
  broker.flush();
  EXPECT_EQ(broker.pending(alice), 1u);
  broker.unsubscribe(alice, sub);
  broker.publish(Message{Tags{"x", "y"}, "m2"});
  broker.flush();
  EXPECT_EQ(broker.pending(alice), 1u);  // Still only m1.
}

TEST(Broker, UnsubscribeSurvivesConsolidation) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  SubscriptionId sub = broker.subscribe(alice, Tags{"x"});
  broker.flush();  // Consolidates the subscription into the main index.
  broker.unsubscribe(alice, sub);
  broker.flush();  // Garbage-collects it from the engine.
  broker.publish(Message{Tags{"x", "y"}, "m"});
  broker.flush();
  EXPECT_EQ(broker.pending(alice), 0u);
  EXPECT_EQ(broker.stats().subscriptions, 0u);
}

TEST(Broker, DisconnectDropsQueueAndSubscriptions) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"t"});
  broker.publish(Message{Tags{"t", "u"}, "m"});
  broker.flush();
  broker.disconnect(alice);
  EXPECT_FALSE(broker.poll(alice).has_value());
  EXPECT_EQ(broker.pending(alice), 0u);
  broker.publish(Message{Tags{"t", "u"}, "m2"});
  broker.flush();
  EXPECT_EQ(broker.stats().subscribers, 0u);
}

TEST(Broker, QueueOverflowDropsWhenConfigured) {
  BrokerConfig config = test_config();
  config.max_queue_per_subscriber = 3;
  config.drop_on_overflow = true;
  Broker broker(config);
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"q"});
  for (int i = 0; i < 10; ++i) {
    broker.publish(Message{Tags{"q", "r"}, "m" + std::to_string(i)});
  }
  broker.flush();
  EXPECT_EQ(broker.pending(alice), 3u);
  EXPECT_EQ(broker.stats().dropped, 7u);
}

TEST(Broker, PollWaitBlocksUntilDelivery) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"later"});
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    broker.publish(Message{Tags{"later", "now"}, "waited"});
  });
  auto msg = broker.poll_wait(alice, std::chrono::milliseconds(3000));
  publisher.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "waited");
}

TEST(Broker, BackgroundConsolidationFoldsChurn) {
  BrokerConfig config = test_config();
  config.consolidate_interval = std::chrono::milliseconds(10);
  Broker broker(config);
  SubscriberId alice = broker.connect();
  for (int i = 0; i < 50; ++i) {
    broker.subscribe(alice, Tags{"topic" + std::to_string(i)});
  }
  for (int spin = 0; spin < 500 && broker.stats().consolidations == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(broker.stats().consolidations, 0u);
  // Everything still matches after background consolidation.
  broker.publish(Message{Tags{"topic7", "extra"}, "still here"});
  auto msg = broker.poll_wait(alice, std::chrono::milliseconds(2000));
  ASSERT_TRUE(msg.has_value());
}

TEST(Broker, ConcurrentPublishersAndChurnStressRun) {
  BrokerConfig config = test_config();
  config.consolidate_interval = std::chrono::milliseconds(5);
  Broker broker(config);
  constexpr int kSubscribers = 8;
  std::vector<SubscriberId> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    SubscriberId id = broker.connect();
    broker.subscribe(id, Tags{"shard" + std::to_string(i % 4)});
    subs.push_back(id);
  }
  std::atomic<int> published{0};
  std::vector<std::thread> publishers;
  for (int p = 0; p < 3; ++p) {
    publishers.emplace_back([&, p] {
      for (int i = 0; i < 100; ++i) {
        broker.publish(Message{Tags{"shard" + std::to_string(i % 4), "p" + std::to_string(p)},
                               "payload"});
        published++;
      }
    });
  }
  // Concurrent churn.
  std::thread churner([&] {
    for (int i = 0; i < 50; ++i) {
      SubscriberId id = broker.connect();
      SubscriptionId s = broker.subscribe(id, Tags{"ephemeral"});
      broker.unsubscribe(id, s);
      broker.disconnect(id);
    }
  });
  for (auto& t : publishers) {
    t.join();
  }
  churner.join();
  broker.flush();
  EXPECT_EQ(published.load(), 300);
  // Each message goes to exactly 2 subscribers (8 subscribers over 4 shards).
  uint64_t expected = 300 * 2;
  EXPECT_EQ(broker.stats().deliveries, expected);
  auto stats = broker.stats();
  EXPECT_EQ(stats.published, 300u);
  EXPECT_EQ(stats.subscribers, static_cast<uint64_t>(kSubscribers));
}

TEST(Broker, BlockedPublisherUnblocksOnPoll) {
  BrokerConfig config = test_config();
  config.max_queue_per_subscriber = 2;
  config.drop_on_overflow = false;
  Broker broker(config);
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"q"});
  for (int i = 0; i < 3; ++i) {
    broker.publish(Message{Tags{"q", "r"}, "m" + std::to_string(i)});
  }
  // Two messages fill the queue; the third delivery blocks a pipeline
  // thread until the consumer makes room (no SLO — indefinitely).
  for (int spin = 0; spin < 5000 && broker.pending(alice) < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(broker.pending(alice), 2u);
  EXPECT_EQ(broker.stats().dropped, 0u);
  EXPECT_TRUE(broker.poll(alice).has_value());  // Makes room; unblocks delivery.
  for (int spin = 0; spin < 5000 && broker.pending(alice) < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(broker.pending(alice), 2u);  // The blocked third message arrived.
  broker.flush();
  EXPECT_EQ(broker.stats().deliveries, 3u);
  EXPECT_EQ(broker.stats().dropped, 0u);
}

TEST(Broker, DisconnectUnblocksBlockedDelivery) {
  BrokerConfig config = test_config();
  config.max_queue_per_subscriber = 1;
  config.drop_on_overflow = false;
  Broker broker(config);
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"q"});
  broker.publish(Message{Tags{"q", "r"}, "m0"});
  broker.publish(Message{Tags{"q", "r"}, "m1"});
  for (int spin = 0; spin < 5000 && broker.pending(alice) < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(broker.pending(alice), 1u);
  // The second delivery is parked on the full queue; disconnecting must wake
  // it (connected flips under the queue cv) or flush() would hang forever.
  broker.disconnect(alice);
  broker.flush();
  EXPECT_EQ(broker.stats().deliveries, 1u);
}

// --- Publish-latency SLO ---------------------------------------------------

TEST(BrokerSlo, UnsetSloLeavesCountersUntouched) {
  Broker broker(test_config());
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"t"});
  EXPECT_EQ(broker.publish(Message{Tags{"t", "u"}, "m"}), Broker::PublishResult::kAccepted);
  broker.flush();
  auto stats = broker.stats();
  EXPECT_EQ(stats.slo_met, 0u);
  EXPECT_EQ(stats.slo_degraded, 0u);
  EXPECT_EQ(stats.slo_partial, 0u);
  EXPECT_EQ(stats.slo_rejected, 0u);
  EXPECT_EQ(broker.metrics_snapshot().histograms.at("broker.slo.margin_ns").count, 0u);
}

TEST(BrokerSlo, InBudgetPublishCountsMet) {
  BrokerConfig config = test_config();
  config.publish_slo = std::chrono::milliseconds(5000);
  Broker broker(config);
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"t"});
  EXPECT_EQ(broker.publish(Message{Tags{"t", "u"}, "m"}), Broker::PublishResult::kAccepted);
  broker.flush();
  auto stats = broker.stats();
  EXPECT_EQ(stats.slo_met, 1u);
  EXPECT_EQ(stats.slo_degraded, 0u);
  EXPECT_EQ(broker.pending(alice), 1u);
  // The margin histogram holds the (positive) leftover budget.
  EXPECT_EQ(broker.metrics_snapshot().histograms.at("broker.slo.margin_ns").count, 1u);
}

TEST(BrokerSlo, SkipsBlockedSubscriberAtDeadline) {
  BrokerConfig config = test_config();
  config.max_queue_per_subscriber = 1;
  config.drop_on_overflow = false;
  config.publish_slo = std::chrono::milliseconds(50);
  config.slo_mode = BrokerConfig::SloMode::kSkipBlocked;
  Broker broker(config);
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"q"});
  broker.publish(Message{Tags{"q", "r"}, "m0"});
  broker.publish(Message{Tags{"q", "r"}, "m1"});
  // Without the SLO the second delivery would block until the consumer
  // polls; with it, the wait is bounded by the deadline and the subscriber
  // is shed — so a plain flush() must complete.
  broker.flush();
  auto stats = broker.stats();
  EXPECT_EQ(stats.deliveries, 1u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_GE(stats.slo_degraded, 1u);
  EXPECT_EQ(stats.slo_partial, 0u);  // Nothing shed at the match stage.
}

TEST(BrokerSlo, DeadlineExpiredShardedPublishDeliversPartial) {
  BrokerConfig config = test_config();
  config.engine_shards = 2;
  config.publish_slo = std::chrono::milliseconds(50);
  config.slo_mode = BrokerConfig::SloMode::kDeliverPartial;
  // Park queries in shard batches much longer than the SLO, and disable the
  // deadline-aware early close so only the gather deadline can end the
  // publish: it must fire partial, not wait out the batch.
  config.engine.batch_timeout = std::chrono::milliseconds(1000);
  config.engine.deadline_batch_close = false;
  Broker broker(config);
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"t"});
  // Consolidate first: against an empty partitioned index a query forwards
  // nowhere and completes instantly, never entering the parked batch this
  // test needs.
  broker.flush();
  broker.publish(Message{Tags{"t", "u"}, "m"});
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(5000);
  while (std::chrono::steady_clock::now() < deadline) {
    auto stats = broker.stats();
    if (stats.slo_met + stats.slo_degraded >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto stats = broker.stats();
  EXPECT_GE(stats.slo_degraded, 1u);
  EXPECT_GE(stats.slo_partial, 1u);
  EXPECT_EQ(stats.slo_met, 0u);
}

TEST(BrokerSlo, DeadlineBatchCloseBeatsBatchTimeout) {
  BrokerConfig config = test_config();
  config.publish_slo = std::chrono::milliseconds(50);
  config.slo_mode = BrokerConfig::SloMode::kSkipBlocked;
  // A lone query in an 8-slot batch would sit out the full 2s batch timeout;
  // the publish deadline must push it through at ~50ms instead.
  config.engine.batch_timeout = std::chrono::milliseconds(2000);
  Broker broker(config);
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"t"});
  broker.flush();  // Consolidate, so the publish query lands in a real batch.
  broker.publish(Message{Tags{"t", "u"}, "m"});
  auto msg = broker.poll_wait(alice, std::chrono::milliseconds(1000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(broker.metrics_snapshot().counters.at("engine.deadline_closes"), 1u);
}

TEST(BrokerSlo, AdmissionRejectsWhileWindowBreaches) {
  BrokerConfig config = test_config();
  config.max_queue_per_subscriber = 1;
  config.drop_on_overflow = false;
  config.publish_slo = std::chrono::milliseconds(1);
  config.slo_mode = BrokerConfig::SloMode::kRejectAdmission;
  config.slo_breach_window = std::chrono::milliseconds(10'000);
  config.slo_breach_min_samples = 4;
  Broker broker(config);
  SubscriberId alice = broker.connect();
  broker.subscribe(alice, Tags{"q"});
  // Nobody polls: after the first message every delivery waits out the 1ms
  // deadline and completes late, so the breach window fills with over-SLO
  // samples and the admission gate must close.
  bool rejected = false;
  uint64_t attempts = 0;
  for (int i = 0; i < 300 && !rejected; ++i) {
    ++attempts;
    rejected = broker.publish(Message{Tags{"q", "r"}, "m"}) == Broker::PublishResult::kRejected;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(rejected);
  auto stats = broker.stats();
  EXPECT_GE(stats.slo_rejected, 1u);
  EXPECT_GE(stats.slo_degraded, 1u);
  // Every attempt is accounted exactly once: accepted or rejected.
  EXPECT_EQ(stats.published + stats.slo_rejected, attempts);
  broker.disconnect(alice);  // Unblock any parked delivery before teardown.
  broker.flush();
}

}  // namespace
}  // namespace tagmatch::broker

namespace tagmatch::broker {
namespace {

class BrokerPersistence : public ::testing::Test {
 protected:
  // Unique per test: ctest runs each case as its own concurrent process.
  std::string prefix_ = ::testing::TempDir() + "/broker_state_" +
                        ::testing::UnitTest::GetInstance()->current_test_info()->name();
  void TearDown() override {
    std::remove((prefix_ + ".idx").c_str());
    std::remove((prefix_ + ".subs").c_str());
  }
};

TEST_F(BrokerPersistence, SaveLoadRestoresSubscriptions) {
  SubscriberId alice, bob;
  {
    Broker broker(test_config());
    alice = broker.connect();
    bob = broker.connect();
    broker.subscribe(alice, Tags{"alerts"});
    broker.subscribe(bob, Tags{"news", "tech"});
    SubscriptionId dead = broker.subscribe(bob, Tags{"ephemeral"});
    broker.unsubscribe(bob, dead);
    ASSERT_TRUE(broker.save(prefix_));
  }
  Broker restored(test_config());
  ASSERT_TRUE(restored.load(prefix_));
  auto stats = restored.stats();
  EXPECT_EQ(stats.subscriptions, 2u);
  EXPECT_EQ(stats.subscribers, 2u);
  restored.publish(Message{Tags{"alerts", "cpu"}, "hot"});
  restored.publish(Message{Tags{"news", "tech", "ai"}, "story"});
  restored.flush();
  EXPECT_EQ(restored.pending(alice), 1u);
  EXPECT_EQ(restored.pending(bob), 1u);
  auto msg = restored.poll(alice);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "hot");
}

TEST_F(BrokerPersistence, NewIdsDoNotCollideAfterLoad) {
  SubscriberId alice;
  SubscriptionId original;
  {
    Broker broker(test_config());
    alice = broker.connect();
    original = broker.subscribe(alice, Tags{"x"});
    ASSERT_TRUE(broker.save(prefix_));
  }
  Broker restored(test_config());
  ASSERT_TRUE(restored.load(prefix_));
  SubscriberId fresh = restored.connect();
  EXPECT_NE(fresh, alice);
  SubscriptionId fresh_sub = restored.subscribe(fresh, Tags{"y"});
  EXPECT_NE(fresh_sub, original);
  restored.publish(Message{Tags{"x", "y"}, "both"});
  restored.flush();
  EXPECT_EQ(restored.pending(alice), 1u);
  EXPECT_EQ(restored.pending(fresh), 1u);
}

TEST_F(BrokerPersistence, LoadRejectsMissingFiles) {
  Broker broker(test_config());
  EXPECT_FALSE(broker.load(prefix_ + "-missing"));
}

}  // namespace
}  // namespace tagmatch::broker

#include "src/core/tagmatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/sig/signature_scheme.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"

namespace tagmatch {
namespace {

using Key = TagMatch::Key;
using workload::TagId;

TagMatchConfig test_config() {
  TagMatchConfig c;
  c.num_threads = 2;
  c.num_gpus = 2;
  c.streams_per_gpu = 3;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 256ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 16;
  c.max_partition_size = 64;
  return c;
}

std::vector<Key> sorted(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Reference implementation: brute-force bitwise-subset scan over (filter,
// key) pairs. Bloom false positives would affect engine and oracle alike
// (both operate on filters), so the comparison is exact.
class Oracle {
 public:
  void add(const BitVector192& filter, Key key) { entries_.emplace_back(filter, key); }

  std::vector<Key> match(const BitVector192& q) const {
    std::vector<Key> keys;
    for (const auto& [f, k] : entries_) {
      if (f.subset_of(q)) {
        keys.push_back(k);
      }
    }
    return sorted(std::move(keys));
  }

  std::vector<Key> match_unique(const BitVector192& q) const {
    auto keys = match(q);
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  }

 private:
  std::vector<std::pair<BitVector192, Key>> entries_;
};

BloomFilter192 random_filter(Rng& rng, unsigned tags) {
  std::vector<TagId> ids;
  for (unsigned i = 0; i < tags; ++i) {
    ids.push_back(workload::make_hashtag(static_cast<unsigned>(rng.below(4)),
                                         static_cast<uint32_t>(rng.below(300))));
  }
  return workload::encode_tags(ids);
}

struct OracleCase {
  std::string name;
  TagMatchConfig config;
};

class TagMatchOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(TagMatchOracleTest, AgreesWithBruteForce) {
  TagMatchConfig config = GetParam().config;
  TagMatch tm(config);
  Oracle oracle;
  Rng rng(1234);

  // Populate: 600 sets over a small tag universe so queries hit many sets,
  // multiple keys per filter, duplicated filters.
  for (int i = 0; i < 600; ++i) {
    BloomFilter192 f = random_filter(rng, 1 + static_cast<unsigned>(rng.below(4)));
    Key key = static_cast<Key>(rng.below(200));
    tm.add_set(f, key);
    oracle.add(f.bits(), key);
  }
  tm.consolidate();
  EXPECT_GT(tm.stats().partitions, 0u);

  for (int iter = 0; iter < 60; ++iter) {
    BloomFilter192 q = random_filter(rng, 2 + static_cast<unsigned>(rng.below(6)));
    EXPECT_EQ(sorted(tm.match(q)), oracle.match(q.bits())) << GetParam().name;
    EXPECT_EQ(tm.match_unique(q), oracle.match_unique(q.bits())) << GetParam().name;
  }
}

std::vector<OracleCase> oracle_cases() {
  std::vector<OracleCase> cases;
  {
    OracleCase c{"default_gpu", test_config()};
    cases.push_back(c);
  }
  {
    OracleCase c{"cpu_only", test_config()};
    c.config.cpu_only = true;
    cases.push_back(c);
  }
  {
    OracleCase c{"no_prefix_filter", test_config()};
    c.config.enable_prefix_filter = false;
    cases.push_back(c);
  }
  {
    OracleCase c{"unpacked_output", test_config()};
    c.config.packed_output = false;
    cases.push_back(c);
  }
  {
    OracleCase c{"single_buffered", test_config()};
    c.config.double_buffered_results = false;
    cases.push_back(c);
  }
  {
    OracleCase c{"one_gpu_one_stream", test_config()};
    c.config.num_gpus = 1;
    c.config.streams_per_gpu = 1;
    cases.push_back(c);
  }
  {
    OracleCase c{"tiny_batches", test_config()};
    c.config.batch_size = 1;
    cases.push_back(c);
  }
  {
    OracleCase c{"huge_partitions", test_config()};
    c.config.max_partition_size = 100000;  // Single-partition-ish regime.
    cases.push_back(c);
  }
  {
    OracleCase c{"tiny_partitions", test_config()};
    c.config.max_partition_size = 4;
    cases.push_back(c);
  }
  {
    OracleCase c{"overflowing_result_buffer", test_config()};
    c.config.result_buffer_entries = 8;  // Force overflow -> CPU fallback.
    cases.push_back(c);
  }
  {
    OracleCase c{"with_timeout", test_config()};
    c.config.batch_timeout = std::chrono::milliseconds(5);
    cases.push_back(c);
  }
  {
    OracleCase c{"enforced_costs", test_config()};
    c.config.gpu_costs.enforce = true;
    c.config.gpu_costs.api_call_overhead_ns = 100;
    c.config.gpu_costs.kernel_launch_overhead_ns = 100;
    cases.push_back(c);
  }
  {
    OracleCase c{"partitioned_tables", test_config()};
    c.config.gpu_table_mode = TagMatchConfig::GpuTableMode::kPartition;
    cases.push_back(c);
  }
  {
    OracleCase c{"exact_check", test_config()};
    c.config.exact_check = true;
    cases.push_back(c);
  }
  {
    OracleCase c{"staged_matching", test_config()};
    c.config.match_staged_adds = true;
    cases.push_back(c);
  }
  {
    OracleCase c{"profiling", test_config()};
    c.config.gpu_profiling = true;
    cases.push_back(c);
  }
  {
    OracleCase c{"kitchen_sink", test_config()};
    c.config.gpu_table_mode = TagMatchConfig::GpuTableMode::kPartition;
    c.config.exact_check = true;
    c.config.match_staged_adds = true;
    c.config.batch_timeout = std::chrono::milliseconds(3);
    c.config.enable_prefix_filter = false;
    c.config.packed_output = false;
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, TagMatchOracleTest, ::testing::ValuesIn(oracle_cases()),
                         [](const ::testing::TestParamInfo<OracleCase>& info) {
                           return info.param.name;
                         });

TEST(TagMatch, EmptyDatabaseMatchesNothing) {
  TagMatch tm(test_config());
  tm.consolidate();
  Rng rng(1);
  BloomFilter192 q = random_filter(rng, 5);
  EXPECT_TRUE(tm.match(q).empty());
  EXPECT_TRUE(tm.match_unique(q).empty());
}

TEST(TagMatch, MatchBeforeConsolidateSeesNothing) {
  TagMatch tm(test_config());
  std::vector<std::string> tags = {"a", "b"};
  tm.add_set(tags, 1);
  // Staged but not consolidated: not visible.
  std::vector<std::string> qtags = {"a", "b", "c"};
  EXPECT_TRUE(tm.match(qtags).empty());
  tm.consolidate();
  EXPECT_EQ(tm.match(qtags), (std::vector<Key>{1}));
}

TEST(TagMatch, StringTagInterface) {
  TagMatch tm(test_config());
  std::vector<std::string> s1 = {"sports", "football"};
  std::vector<std::string> s2 = {"sports"};
  std::vector<std::string> s3 = {"music"};
  tm.add_set(s1, 10);
  tm.add_set(s2, 20);
  tm.add_set(s3, 30);
  tm.consolidate();
  std::vector<std::string> q = {"sports", "football", "worldcup"};
  EXPECT_EQ(sorted(tm.match(q)), (std::vector<Key>{10, 20}));
  std::vector<std::string> q2 = {"music", "jazz"};
  EXPECT_EQ(tm.match(q2), (std::vector<Key>{30}));
}

TEST(TagMatch, MatchReturnsMultisetMatchUniqueDedupes) {
  TagMatch tm(test_config());
  // Same key associated with two different subsets of the query.
  std::vector<std::string> s1 = {"a"};
  std::vector<std::string> s2 = {"b"};
  tm.add_set(s1, 5);
  tm.add_set(s2, 5);
  tm.consolidate();
  std::vector<std::string> q = {"a", "b"};
  EXPECT_EQ(tm.match(q), (std::vector<Key>{5, 5}));
  EXPECT_EQ(tm.match_unique(q), (std::vector<Key>{5}));
}

TEST(TagMatch, MultipleKeysPerIdenticalSet) {
  TagMatch tm(test_config());
  std::vector<std::string> s = {"x", "y"};
  tm.add_set(s, 1);
  tm.add_set(s, 2);
  tm.add_set(s, 3);
  tm.consolidate();
  EXPECT_EQ(tm.stats().unique_sets, 1u);
  std::vector<std::string> q = {"x", "y", "z"};
  EXPECT_EQ(sorted(tm.match(q)), (std::vector<Key>{1, 2, 3}));
}

TEST(TagMatch, RemoveSetTakesEffectAtConsolidate) {
  TagMatch tm(test_config());
  std::vector<std::string> s = {"a", "b"};
  tm.add_set(s, 1);
  tm.add_set(s, 2);
  tm.consolidate();
  std::vector<std::string> q = {"a", "b", "c"};
  EXPECT_EQ(sorted(tm.match(q)), (std::vector<Key>{1, 2}));
  tm.remove_set(s, 1);
  EXPECT_EQ(sorted(tm.match(q)), (std::vector<Key>{1, 2}));  // Staged only.
  tm.consolidate();
  EXPECT_EQ(tm.match(q), (std::vector<Key>{2}));
  tm.remove_set(s, 2);
  tm.consolidate();
  EXPECT_TRUE(tm.match(q).empty());
  EXPECT_EQ(tm.stats().unique_sets, 0u);
}

TEST(TagMatch, RemoveNonexistentIsNoop) {
  TagMatch tm(test_config());
  std::vector<std::string> s = {"a"};
  std::vector<std::string> other = {"zzz"};
  tm.add_set(s, 1);
  tm.remove_set(other, 9);
  tm.remove_set(s, 9);  // Wrong key.
  tm.consolidate();
  std::vector<std::string> q = {"a", "b"};
  EXPECT_EQ(tm.match(q), (std::vector<Key>{1}));
}

// Regression: staging the same (filter, key) pair twice — within one
// staging batch or across consolidation cycles — must not duplicate the key
// in the flat index.
TEST(TagMatch, DuplicateAddIsIdempotent) {
  TagMatch tm(test_config());
  std::vector<std::string> s = {"a", "b"};
  tm.add_set(s, 7);
  tm.add_set(s, 7);  // Duplicate within the same staging batch.
  tm.consolidate();
  std::vector<std::string> q = {"a", "b", "c"};
  EXPECT_EQ(tm.match(q), (std::vector<Key>{7}));
  EXPECT_EQ(tm.stats().total_keys, 1u);
  tm.add_set(s, 7);  // Re-add of an already-consolidated pair.
  tm.consolidate();
  EXPECT_EQ(tm.match(q), (std::vector<Key>{7}));
  EXPECT_EQ(tm.stats().total_keys, 1u);
}

// Regression: a remove after a duplicated add must erase the pair entirely.
// The old path appended the key twice and erased only the first occurrence,
// leaving a phantom key that kept matching forever.
TEST(TagMatch, RemoveAfterDuplicateAddErasesPair) {
  TagMatch tm(test_config());
  std::vector<std::string> s = {"a", "b"};
  tm.add_set(s, 7);
  tm.add_set(s, 7);
  tm.add_set(s, 8);
  tm.consolidate();
  tm.remove_set(s, 7);
  tm.consolidate();
  std::vector<std::string> q = {"a", "b", "c"};
  EXPECT_EQ(tm.match(q), (std::vector<Key>{8}));
  tm.remove_set(s, 8);
  tm.consolidate();
  EXPECT_TRUE(tm.match(q).empty());
  EXPECT_EQ(tm.stats().unique_sets, 0u);
}

TEST(TagMatch, ReconsolidateAfterAdds) {
  TagMatch tm(test_config());
  std::vector<std::string> s1 = {"a"};
  tm.add_set(s1, 1);
  tm.consolidate();
  std::vector<std::string> q = {"a", "b"};
  EXPECT_EQ(tm.match(q), (std::vector<Key>{1}));
  std::vector<std::string> s2 = {"b"};
  tm.add_set(s2, 2);
  tm.consolidate();
  EXPECT_EQ(sorted(tm.match(q)), (std::vector<Key>{1, 2}));
}

TEST(TagMatch, EmptySetMatchesEveryQuery) {
  TagMatch tm(test_config());
  tm.add_set(std::span<const std::string>{}, 77);
  std::vector<std::string> s = {"a"};
  tm.add_set(s, 1);
  tm.consolidate();
  std::vector<std::string> q = {"whatever"};
  EXPECT_EQ(tm.match(q), (std::vector<Key>{77}));
  std::vector<std::string> q2 = {"a"};
  EXPECT_EQ(sorted(tm.match(q2)), (std::vector<Key>{1, 77}));
  // Even the empty query matches the empty set.
  EXPECT_EQ(tm.match(std::span<const std::string>{}), (std::vector<Key>{77}));
}

TEST(TagMatch, AsyncPipelineCompletesAllQueries) {
  TagMatchConfig config = test_config();
  config.batch_timeout = std::chrono::milliseconds(2);
  TagMatch tm(config);
  Rng rng(77);
  Oracle oracle;
  for (int i = 0; i < 300; ++i) {
    BloomFilter192 f = random_filter(rng, 2);
    tm.add_set(f, static_cast<Key>(i));
    oracle.add(f.bits(), static_cast<Key>(i));
  }
  tm.consolidate();

  constexpr int kQueries = 500;
  std::atomic<int> done{0};
  std::atomic<uint64_t> total_keys{0};
  std::vector<BloomFilter192> queries;
  uint64_t expected_keys = 0;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back(random_filter(rng, 4));
    expected_keys += oracle.match(queries.back().bits()).size();
  }
  for (const auto& q : queries) {
    tm.match_async(q, TagMatch::MatchKind::kMatch, [&](std::vector<Key> keys) {
      total_keys += keys.size();
      done++;
    });
  }
  tm.flush();
  EXPECT_EQ(done.load(), kQueries);
  EXPECT_EQ(total_keys.load(), expected_keys);
  EXPECT_EQ(tm.stats().queries_processed, static_cast<uint64_t>(kQueries));
}

TEST(TagMatch, OverflowFallbackProducesExactResults) {
  TagMatchConfig config = test_config();
  config.result_buffer_entries = 4;
  config.batch_size = 32;
  TagMatch tm(config);
  Oracle oracle;
  // All sets share tag "a" so a query with "a" matches everything — far more
  // than 4 results per batch.
  // Encode under the engine's resolved scheme — sets go in via strings, so a
  // bloom192-only oracle/query would mismatch under TAGMATCH_SCHEME overrides.
  const sig::SignatureScheme& scheme = sig::resolve(nullptr);
  std::vector<std::string> s = {"a"};
  for (Key k = 0; k < 200; ++k) {
    tm.add_set(s, k);
    oracle.add(scheme.encode(s), k);
  }
  tm.consolidate();
  std::vector<std::string> q = {"a", "b"};
  BloomFilter192 qf(scheme.encode(q));
  EXPECT_EQ(sorted(tm.match(qf)), oracle.match(qf.bits()));
  EXPECT_GE(tm.stats().batch_overflows, 0u);
}

TEST(TagMatch, StatsReportMemoryAndCounts) {
  TagMatch tm(test_config());
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    tm.add_set(random_filter(rng, 3), static_cast<Key>(i));
  }
  tm.consolidate();
  auto s = tm.stats();
  EXPECT_GT(s.unique_sets, 0u);
  EXPECT_EQ(s.total_keys, 500u);
  EXPECT_GT(s.partitions, 0u);
  EXPECT_GT(s.host_key_table_bytes, 0u);
  EXPECT_GT(s.host_partition_table_bytes, 0u);
  EXPECT_GT(s.gpu_bytes, 0u);
  EXPECT_GT(s.last_consolidate_seconds, 0.0);
}

TEST(TagMatch, TwitterWorkloadEndToEnd) {
  workload::WorkloadConfig wc;
  wc.num_users = 500;
  wc.num_publishers = 100;
  wc.vocabulary_size = 500;
  workload::TwitterWorkload w(wc);
  auto db = w.generate_database();
  auto queries = w.generate_queries(db, 100, 2, 4);

  TagMatchConfig config = test_config();
  config.max_partition_size = 256;
  TagMatch tm(config);
  Oracle oracle;
  for (const auto& op : db) {
    BloomFilter192 f = workload::encode_tags(op.tags);
    tm.add_set(f, op.key);
    oracle.add(f.bits(), op.key);
  }
  tm.consolidate();

  size_t nonempty = 0;
  for (const auto& q : queries) {
    BloomFilter192 qf = workload::encode_tags(q.tags);
    auto got = tm.match_unique(qf);
    EXPECT_EQ(got, oracle.match_unique(qf.bits()));
    nonempty += got.empty() ? 0 : 1;
  }
  // Workload guarantee (§4.2.2): every query contains a db set, so every
  // query matches at least one key.
  EXPECT_EQ(nonempty, queries.size());
}

}  // namespace
}  // namespace tagmatch

namespace tagmatch {
namespace {

TEST(TagMatchTelemetry, StageCountersTrackPipelineFlow) {
  TagMatchConfig config = test_config();
  config.batch_size = 4;
  TagMatch tm(config);
  std::vector<std::string> s1 = {"a"};
  std::vector<std::string> s2 = {"b"};
  tm.add_set(s1, 1);
  tm.add_set(s2, 2);
  tm.consolidate();
  std::vector<std::string> q = {"a", "b"};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tm.match(q).size(), 2u);
  }
  auto stats = tm.stats();
  EXPECT_EQ(stats.queries_processed, 8u);
  // Every query matched both sets' partitions, so it was forwarded at least
  // once; the subset match produced exactly 2 pairs per query.
  EXPECT_GE(stats.partitions_forwarded, 8u);
  EXPECT_EQ(stats.result_pairs, 16u);
  EXPECT_GT(stats.batches_submitted, 0u);
  EXPECT_GT(stats.avg_batch_fill(), 0.0);
  EXPECT_LE(stats.avg_batch_fill(), 4.0);
  EXPECT_GE(stats.avg_partitions_per_query(), 1.0);
}

// ------------------------------------------------- persistence error paths
//
// load_index on a damaged file must return false and leave the live,
// already-consolidated engine fully functional (see also
// features_test.cc::PersistenceTest for the happy paths).

class IndexErrorPathTest : public ::testing::Test {
 protected:
  // Unique per test: ctest runs each case as its own concurrent process.
  std::string path_ = ::testing::TempDir() + "/tagmatch_errpath_" +
                      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".bin";
  void TearDown() override { std::remove(path_.c_str()); }

  // Builds a live engine plus a valid index file for it at path_.
  void build(TagMatch& tm) {
    std::vector<std::string> s = {"live"};
    tm.add_set(s, 42);
    tm.consolidate();
    ASSERT_TRUE(tm.save_index(path_));
  }

  void expect_alive(TagMatch& tm) {
    std::vector<std::string> q = {"live", "extra"};
    EXPECT_EQ(tm.match(q), (std::vector<Key>{42}));
  }

  // Overwrites 4 bytes at `offset` in the saved index.
  void stamp(long offset, uint32_t value) {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fwrite(&value, sizeof(value), 1, f);
    std::fclose(f);
  }

  void truncate_to(size_t bytes) {
    std::FILE* in = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::vector<char> head(bytes);
    ASSERT_EQ(std::fread(head.data(), 1, bytes, in), bytes);
    std::fclose(in);
    std::FILE* out = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(head.data(), 1, bytes, out);
    std::fclose(out);
  }
};

TEST_F(IndexErrorPathTest, TruncatedFileRejected) {
  TagMatch tm(test_config());
  build(tm);
  // Header survives but the table payload is cut short.
  truncate_to(16);
  EXPECT_FALSE(tm.load_index(path_));
  expect_alive(tm);
}

TEST_F(IndexErrorPathTest, WrongMagicRejected) {
  TagMatch tm(test_config());
  build(tm);
  stamp(0, 0x4b4e554a);  // "JUNK"
  EXPECT_FALSE(tm.load_index(path_));
  expect_alive(tm);
}

TEST_F(IndexErrorPathTest, WrongVersionRejected) {
  TagMatch tm(test_config());
  build(tm);
  stamp(4, 999);  // Version field follows the magic.
  EXPECT_FALSE(tm.load_index(path_));
  expect_alive(tm);
}

}  // namespace
}  // namespace tagmatch

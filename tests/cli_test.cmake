# End-to-end test of tagmatch_cli: generate -> build -> stats -> query.
# Invoked by ctest with -DCLI=<path-to-binary> -DWORK=<scratch-dir>.

file(MAKE_DIRECTORY ${WORK})

execute_process(COMMAND ${CLI} generate ${WORK}/sets.tsv ${WORK}/queries.tsv 300 40
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${out}")
endif()

execute_process(COMMAND ${CLI} build ${WORK}/sets.tsv ${WORK}/index.bin
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "build failed: ${out}")
endif()

execute_process(COMMAND ${CLI} stats ${WORK}/index.bin
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "unique sets")
  message(FATAL_ERROR "stats failed: ${out}")
endif()

execute_process(COMMAND ${CLI} query ${WORK}/index.bin ${WORK}/queries.tsv --unique
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "query failed: ${out}")
endif()
# Every generated query contains a database set, so no line may report 0
# matches.
string(REPLACE "\n" ";" lines "${out}")
set(nonempty 0)
foreach(line IN LISTS lines)
  if(line MATCHES "^0($| )")
    message(FATAL_ERROR "query with zero matches found: ${line}")
  endif()
  if(NOT line STREQUAL "")
    math(EXPR nonempty "${nonempty}+1")
  endif()
endforeach()
if(nonempty LESS 40)
  message(FATAL_ERROR "expected 40 query result lines, got ${nonempty}")
endif()

execute_process(COMMAND ${CLI} bench ${WORK}/index.bin ${WORK}/queries.tsv 1
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "q/s")
  message(FATAL_ERROR "bench failed: ${out}")
endif()

# Bad inputs must fail cleanly.
execute_process(COMMAND ${CLI} query ${WORK}/does-not-exist.bin ${WORK}/queries.tsv
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "query against a missing index unexpectedly succeeded")
endif()

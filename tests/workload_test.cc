#include "src/workload/twitter_workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/common/bit_vector.h"

namespace tagmatch::workload {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig c;
  c.num_users = 2000;
  c.num_publishers = 500;
  c.vocabulary_size = 2000;
  c.seed = 99;
  return c;
}

TEST(TagNames, RenderLanguagesAndPublishers) {
  EXPECT_EQ(tag_name(make_hashtag(0, 17)), "tag17");
  EXPECT_EQ(tag_name(make_hashtag(7, 17)), "fr_tag17");
  EXPECT_EQ(tag_name(make_publisher_tag(42)), "@publisher42");
}

TEST(TagIds, EncodingFieldsRoundTrip) {
  TagId t = make_hashtag(5, 123456);
  EXPECT_FALSE(is_publisher_tag(t));
  EXPECT_EQ(tag_language(t), 5u);
  EXPECT_EQ(tag_base(t), 123456u);
  TagId p = make_publisher_tag(7);
  EXPECT_TRUE(is_publisher_tag(p));
}

TEST(TwitterWorkload, DeterministicForSeed) {
  TwitterWorkload w1(small_config());
  TwitterWorkload w2(small_config());
  auto db1 = w1.generate_database();
  auto db2 = w2.generate_database();
  ASSERT_EQ(db1.size(), db2.size());
  for (size_t i = 0; i < db1.size(); ++i) {
    EXPECT_EQ(db1[i].key, db2[i].key);
    EXPECT_EQ(db1[i].tags, db2[i].tags);
  }
}

TEST(TwitterWorkload, EveryUserHasAtLeastOneInterest) {
  TwitterWorkload w(small_config());
  auto db = w.generate_database();
  std::set<uint32_t> users;
  for (const auto& op : db) {
    users.insert(op.key);
    EXPECT_FALSE(op.tags.empty());
  }
  EXPECT_EQ(users.size(), small_config().num_users);
}

TEST(TwitterWorkload, InterestsAverageAboutFiveTags) {
  TwitterWorkload w(small_config());
  auto db = w.generate_database();
  double total = 0;
  for (const auto& op : db) {
    total += static_cast<double>(op.tags.size());
  }
  double mean = total / static_cast<double>(db.size());
  // The paper reports an average of ~5 tags per interest.
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 7.0);
}

TEST(TwitterWorkload, FrequentWritersContributePublisherTags) {
  TwitterWorkload w(small_config());
  auto db = w.generate_database();
  size_t with_publisher = 0;
  for (const auto& op : db) {
    for (TagId t : op.tags) {
      if (is_publisher_tag(t)) {
        ++with_publisher;
        break;
      }
    }
  }
  // Frequent writers are 30% of publishers but, being ranked by tweet count,
  // carry a larger share of interests. The share must be substantial but not
  // universal.
  EXPECT_GT(with_publisher, db.size() / 10);
  EXPECT_LT(with_publisher, db.size());
}

TEST(TwitterWorkload, TweetTagsDeterministicAndBounded) {
  TwitterWorkload w(small_config());
  for (uint32_t p = 0; p < 20; ++p) {
    ASSERT_GE(w.tweets_of(p), 1u);
    auto tags1 = w.tweet_base_tags(p, 0);
    auto tags2 = w.tweet_base_tags(p, 0);
    EXPECT_EQ(tags1, tags2);
    EXPECT_GE(tags1.size(), 1u);
    EXPECT_LE(tags1.size(), small_config().max_tags_per_tweet);
  }
}

TEST(TwitterWorkload, QueriesContainASeedDatabaseSet) {
  TwitterWorkload w(small_config());
  auto db = w.generate_database();
  auto queries = w.generate_queries(db, 200, 2, 4);
  ASSERT_EQ(queries.size(), 200u);
  // Every query is (some db set) + 2..4 extra tags, so at least one db set
  // must be fully contained in it — checked via exact tag-set inclusion
  // against the whole db.
  for (const auto& q : queries) {
    std::unordered_set<TagId> qtags(q.tags.begin(), q.tags.end());
    bool contains_some_set = false;
    for (const auto& op : db) {
      bool all = true;
      for (TagId t : op.tags) {
        if (!qtags.count(t)) {
          all = false;
          break;
        }
      }
      if (all) {
        contains_some_set = true;
        break;
      }
    }
    EXPECT_TRUE(contains_some_set);
  }
}

TEST(TwitterWorkload, ExtraTagCountRespected) {
  TwitterWorkload w(small_config());
  auto db = w.generate_database();
  for (unsigned extra : {1u, 5u, 10u}) {
    auto queries = w.generate_queries_exact_extra(db, 50, extra);
    for (const auto& q : queries) {
      // Query = seed set + exactly `extra` added tags (duplicates possible
      // but rare); sizes must be seed+extra.
      EXPECT_GE(q.tags.size(), extra);
    }
  }
}

TEST(TwitterWorkload, MultipleLanguagesAppear) {
  TwitterWorkload w(small_config());
  auto db = w.generate_database();
  std::set<unsigned> langs;
  for (const auto& op : db) {
    for (TagId t : op.tags) {
      if (!is_publisher_tag(t)) {
        langs.insert(tag_language(t));
      }
    }
  }
  // English dominates but the workload must be multilingual.
  EXPECT_GE(langs.size(), 4u);
  EXPECT_TRUE(langs.count(0));  // en
}

TEST(TwitterWorkload, DuplicateInterestsExist) {
  // The paper's workload has 300M keys but only 212M unique sets: distinct
  // users share interests. Our generator must reproduce that (popular
  // publishers/tweets are followed by many users).
  WorkloadConfig c = small_config();
  c.num_users = 5000;
  TwitterWorkload w(c);
  auto db = w.generate_database();
  std::set<std::vector<TagId>> unique;
  for (auto op : db) {
    std::sort(op.tags.begin(), op.tags.end());
    unique.insert(op.tags);
  }
  EXPECT_LT(unique.size(), db.size());
}

}  // namespace
}  // namespace tagmatch::workload

// Direct tests of the GPU engine's batching protocol (§3.3.2): the even/odd
// double-buffer cycle, result delivery lag, draining, back-pressure, and the
// single-buffered ablation path.
#include "src/core/gpu_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/rng.h"
#include "src/core/partitioner.h"

namespace tagmatch {
namespace {

TagMatchConfig engine_config() {
  TagMatchConfig c;
  c.num_gpus = 1;
  c.streams_per_gpu = 2;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 128ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 8;
  return c;
}

// A tiny fixture database: partitions of known content so expected results
// can be computed by hand.
struct Fixture {
  std::vector<BitVector192> filters;
  std::vector<uint32_t> set_ids;
  std::vector<uint32_t> offsets;

  TagsetTableView view() const { return TagsetTableView{filters, set_ids, offsets}; }
};

Fixture make_fixture(size_t sets_per_partition, size_t partitions, uint64_t seed) {
  Rng rng(seed);
  Fixture f;
  f.offsets.push_back(0);
  uint32_t sid = 0;
  for (size_t p = 0; p < partitions; ++p) {
    std::vector<BitVector192> part;
    for (size_t i = 0; i < sets_per_partition; ++i) {
      BitVector192 v;
      for (int b = 0; b < 8; ++b) {
        v.set(static_cast<unsigned>(rng.below(192)));
      }
      part.push_back(v);
    }
    std::sort(part.begin(), part.end());
    for (auto& v : part) {
      f.filters.push_back(v);
      f.set_ids.push_back(sid++);
    }
    f.offsets.push_back(static_cast<uint32_t>(f.filters.size()));
  }
  return f;
}

std::vector<ResultPair> expected_pairs(const Fixture& f, PartitionId part,
                                       std::span<const BitVector192> queries) {
  std::vector<ResultPair> out;
  for (uint32_t i = f.offsets[part]; i < f.offsets[part + 1]; ++i) {
    for (uint32_t q = 0; q < queries.size(); ++q) {
      if (f.filters[i].subset_of(queries[q])) {
        out.push_back(ResultPair{static_cast<uint8_t>(q), f.set_ids[i]});
      }
    }
  }
  return out;
}

bool same_pairs(std::vector<ResultPair> a, std::vector<ResultPair> b) {
  auto key = [](const ResultPair& p) { return (uint64_t{p.query} << 32) | p.set_id; };
  auto cmp = [&](const ResultPair& x, const ResultPair& y) { return key(x) < key(y); };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (key(a[i]) != key(b[i])) {
      return false;
    }
  }
  return true;
}

struct Collected {
  std::mutex mu;
  std::map<void*, std::vector<ResultPair>> by_token;
  std::atomic<int> deliveries{0};
};

TEST(GpuEngine, SingleBatchDeliversAfterDrain) {
  Collected collected;
  GpuEngine engine(engine_config(),
                   [&](void* token, std::span<const ResultPair> pairs, bool overflow) {
                     EXPECT_FALSE(overflow);
                     std::lock_guard lock(collected.mu);
                     collected.by_token[token].assign(pairs.begin(), pairs.end());
                     collected.deliveries++;
                   });
  Fixture f = make_fixture(32, 2, 1);
  engine.upload(f.view());

  std::vector<BitVector192> queries;
  BitVector192 q = f.filters[0];
  q.set(3);
  queries.push_back(q);
  int token = 42;
  engine.submit(0, queries, &token);
  EXPECT_EQ(engine.in_flight(), 1u);
  // Double-buffered: results trail by one cycle until drained.
  engine.drain();
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(collected.deliveries.load(), 1);
  EXPECT_TRUE(same_pairs(collected.by_token[&token], expected_pairs(f, 0, queries)));
}

TEST(GpuEngine, PipelinedBatchesAllDelivered) {
  Collected collected;
  GpuEngine engine(engine_config(),
                   [&](void* token, std::span<const ResultPair> pairs, bool overflow) {
                     EXPECT_FALSE(overflow);
                     std::lock_guard lock(collected.mu);
                     collected.by_token[token].assign(pairs.begin(), pairs.end());
                     collected.deliveries++;
                   });
  Fixture f = make_fixture(64, 3, 2);
  engine.upload(f.view());

  constexpr int kBatches = 20;
  std::vector<std::vector<BitVector192>> batches(kBatches);
  std::vector<int> tokens(kBatches);
  Rng rng(9);
  for (int b = 0; b < kBatches; ++b) {
    for (int i = 0; i < 4; ++i) {
      BitVector192 q = f.filters[rng.below(f.filters.size())];
      for (int e = 0; e < 10; ++e) {
        q.set(static_cast<unsigned>(rng.below(192)));
      }
      batches[b].push_back(q);
    }
    engine.submit(static_cast<PartitionId>(b % 3), batches[b], &tokens[b]);
  }
  engine.drain();
  EXPECT_EQ(collected.deliveries.load(), kBatches);
  for (int b = 0; b < kBatches; ++b) {
    EXPECT_TRUE(same_pairs(collected.by_token[&tokens[b]],
                           expected_pairs(f, static_cast<PartitionId>(b % 3), batches[b])))
        << "batch " << b;
  }
}

TEST(GpuEngine, SingleBufferedModeDeliversImmediately) {
  TagMatchConfig config = engine_config();
  config.double_buffered_results = false;
  Collected collected;
  GpuEngine engine(config, [&](void* token, std::span<const ResultPair> pairs, bool overflow) {
    EXPECT_FALSE(overflow);
    std::lock_guard lock(collected.mu);
    collected.by_token[token].assign(pairs.begin(), pairs.end());
    collected.deliveries++;
  });
  Fixture f = make_fixture(32, 1, 3);
  engine.upload(f.view());
  std::vector<BitVector192> queries{f.filters[5] | f.filters[6]};
  int token = 0;
  engine.submit(0, queries, &token);
  // The ablation path is synchronous: delivery happens inside submit().
  EXPECT_EQ(collected.deliveries.load(), 1);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_TRUE(same_pairs(collected.by_token[&token], expected_pairs(f, 0, queries)));
}

TEST(GpuEngine, OverflowFlagRaised) {
  TagMatchConfig config = engine_config();
  config.result_buffer_entries = 2;
  std::atomic<bool> saw_overflow{false};
  GpuEngine engine(config, [&](void*, std::span<const ResultPair>, bool overflow) {
    if (overflow) {
      saw_overflow = true;
    }
  });
  // One partition where every set is the same filter -> every set matches.
  Fixture f;
  BitVector192 v;
  v.set(10);
  f.offsets = {0, 16};
  for (uint32_t i = 0; i < 16; ++i) {
    f.filters.push_back(v);
    f.set_ids.push_back(i);
  }
  engine.upload(f.view());
  BitVector192 q = v;
  q.set(20);
  std::vector<BitVector192> queries{q};
  int token = 0;
  engine.submit(0, queries, &token);
  engine.drain();
  EXPECT_TRUE(saw_overflow.load());
}

TEST(GpuEngine, ManyBatchesExerciseBackPressure) {
  // More batches than streams, small stream pool: submissions must block and
  // recycle streams without losing results.
  TagMatchConfig config = engine_config();
  config.streams_per_gpu = 1;
  std::atomic<int> deliveries{0};
  std::atomic<uint64_t> total_pairs{0};
  GpuEngine engine(config, [&](void*, std::span<const ResultPair> pairs, bool overflow) {
    EXPECT_FALSE(overflow);
    total_pairs += pairs.size();
    deliveries++;
  });
  Fixture f = make_fixture(16, 1, 4);
  engine.upload(f.view());
  std::vector<BitVector192> queries{f.filters[0] | f.filters[15]};
  uint64_t expected = expected_pairs(f, 0, queries).size();
  constexpr int kBatches = 50;
  for (int b = 0; b < kBatches; ++b) {
    engine.submit(0, queries, nullptr);
  }
  engine.drain();
  EXPECT_EQ(deliveries.load(), kBatches);
  EXPECT_EQ(total_pairs.load(), expected * kBatches);
}

TEST(GpuEngine, DrainIsIdempotent) {
  std::atomic<int> deliveries{0};
  GpuEngine engine(engine_config(), [&](void*, std::span<const ResultPair>, bool) {
    deliveries++;
  });
  Fixture f = make_fixture(8, 1, 5);
  engine.upload(f.view());
  std::vector<BitVector192> queries{f.filters[0]};
  engine.submit(0, queries, nullptr);
  engine.drain();
  engine.drain();
  engine.drain();
  EXPECT_EQ(deliveries.load(), 1);
}

TEST(GpuEngine, ReuploadReplacesTable) {
  Collected collected;
  GpuEngine engine(engine_config(),
                   [&](void* token, std::span<const ResultPair> pairs, bool) {
                     std::lock_guard lock(collected.mu);
                     collected.by_token[token].assign(pairs.begin(), pairs.end());
                   });
  Fixture f1 = make_fixture(16, 1, 6);
  engine.upload(f1.view());
  std::vector<BitVector192> queries{f1.filters[3]};
  int t1 = 0, t2 = 0;
  engine.submit(0, queries, &t1);
  engine.drain();

  Fixture f2 = make_fixture(16, 1, 7);
  engine.upload(f2.view());
  engine.submit(0, queries, &t2);
  engine.drain();
  EXPECT_TRUE(same_pairs(collected.by_token[&t1], expected_pairs(f1, 0, queries)));
  EXPECT_TRUE(same_pairs(collected.by_token[&t2], expected_pairs(f2, 0, queries)));
}

TEST(GpuEngine, DeviceMemoryAccountsTables) {
  GpuEngine engine(engine_config(), [](void*, std::span<const ResultPair>, bool) {});
  uint64_t before = engine.device_memory_used();
  Fixture f = make_fixture(1024, 4, 8);
  engine.upload(f.view());
  EXPECT_GT(engine.device_memory_used(),
            before + f.filters.size() * sizeof(BitVector192) / 2);
}

}  // namespace
}  // namespace tagmatch

namespace tagmatch {
namespace {

TEST(GpuEngine, ConcurrentDrainsDoNotDeadlock) {
  // Regression: two simultaneous whole-pool drains (user flush racing the
  // batch-timeout flusher) used to each acquire part of the stream pool and
  // deadlock waiting for the remainder.
  TagMatchConfig config = engine_config();
  config.streams_per_gpu = 2;
  std::atomic<int> deliveries{0};
  GpuEngine engine(config, [&](void*, std::span<const ResultPair>, bool) { deliveries++; });
  Fixture f = make_fixture(16, 2, 9);
  engine.upload(f.view());
  std::vector<BitVector192> queries{f.filters[0]};

  for (int round = 0; round < 20; ++round) {
    engine.submit(0, queries, nullptr);
    engine.submit(1, queries, nullptr);
    std::thread t1([&] { engine.drain(); });
    std::thread t2([&] { engine.drain(); });
    t1.join();
    t2.join();
  }
  EXPECT_EQ(deliveries.load(), 40);
  EXPECT_EQ(engine.in_flight(), 0u);
}

}  // namespace
}  // namespace tagmatch

// Anti-entropy convergence stress for the replication layer
// (src/shard/replica_set.*), TSan-wired via the nightly sanitizer matrix:
// concurrent subscription-style churn, hedged queries, kill/restart cycles
// and periodic consolidates all race; afterwards one final consolidate must
// converge every replica of every shard to byte-identical content, and
// every accepted query must have fired its callback exactly once (hedges
// and failovers never duplicate or drop a completion).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/shard/sharded_tagmatch.h"
#include "src/workload/tags.h"
#include "tests/test_seed.h"

namespace tagmatch {
namespace {

using Key = Matcher::Key;
using shard::ShardedConfig;
using shard::ShardedTagMatch;
using workload::TagId;

TagMatchConfig engine_config() {
  TagMatchConfig c;
  c.num_threads = 2;
  c.num_gpus = 1;
  c.streams_per_gpu = 2;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 128ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 16;
  c.max_partition_size = 32;
  return c;
}

BitVector192 random_filter(Rng& rng, uint32_t universe, unsigned max_tags) {
  std::vector<TagId> tags;
  unsigned n = 1 + static_cast<unsigned>(rng.below(max_tags));
  for (unsigned i = 0; i < n; ++i) {
    tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(universe))));
  }
  return workload::encode_tags(tags).bits();
}

TEST(ShardedReplicaStress, ChurnKillRestartConvergesAndFiresExactlyOnce) {
  const uint64_t seed = test::test_seed(9101);
  TAGMATCH_SEED_TRACE(seed);

  constexpr unsigned kShards = 2;
  constexpr unsigned kReplicas = 3;
  ShardedConfig config;
  config.num_shards = kShards;
  config.num_replicas = kReplicas;
  config.hedge_delay = std::chrono::milliseconds(5);
  config.replica_quarantine_period = std::chrono::milliseconds(10);
  config.shard = engine_config();
  ShardedTagMatch router(config);

  // Seed content so queries hit something from the start.
  {
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      router.add_set(BloomFilter192(random_filter(rng, 100, 3)), static_cast<Key>(i));
    }
  }
  router.consolidate();

  constexpr int kWriters = 2;
  constexpr int kQueriers = 2;
  constexpr int kOpsPerWriter = 300;
  constexpr int kQueriesPerQuerier = 150;

  std::atomic<bool> stop_chaos{false};
  std::vector<std::unique_ptr<std::atomic<int>>> fired;
  fired.reserve(kQueriers * kQueriesPerQuerier);
  for (int i = 0; i < kQueriers * kQueriesPerQuerier; ++i) {
    fired.push_back(std::make_unique<std::atomic<int>>(0));
  }

  std::vector<std::thread> threads;
  // Churn writers: interleaved adds and removes on a private key range each.
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed + 17 * static_cast<uint64_t>(t + 1));
      const Key base = 10'000 + static_cast<Key>(t) * 10'000;
      std::vector<BitVector192> added;
      for (int i = 0; i < kOpsPerWriter; ++i) {
        if (!added.empty() && rng.chance(0.3)) {
          const size_t j = rng.below(added.size());
          router.remove_set(BloomFilter192(added[j]), base + static_cast<Key>(j));
        } else {
          added.push_back(random_filter(rng, 100, 3));
          router.add_set(BloomFilter192(added.back()),
                         base + static_cast<Key>(added.size() - 1));
        }
        if (i % 60 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }
  // Queriers: async matches; each callback must fire exactly once.
  for (int t = 0; t < kQueriers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed + 31 * static_cast<uint64_t>(t + 1));
      for (int i = 0; i < kQueriesPerQuerier; ++i) {
        const int slot = t * kQueriesPerQuerier + i;
        router.match_async(BloomFilter192(random_filter(rng, 100, 5)),
                           Matcher::MatchKind::kMatch, [&fired, slot](std::vector<Key>) {
                             fired[static_cast<size_t>(slot)]->fetch_add(
                                 1, std::memory_order_relaxed);
                           });
        if (i % 20 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }
  // Chaos: kill/restart cycles on replicas 1..R-1 (replica 0 stays alive so
  // anti-entropy always has a trustworthy reference), with consolidates
  // (repairs) racing everything else.
  threads.emplace_back([&] {
    Rng rng(seed ^ 0xc4a05);
    while (!stop_chaos.load(std::memory_order_acquire)) {
      const unsigned shard = static_cast<unsigned>(rng.below(kShards));
      const unsigned replica = 1 + static_cast<unsigned>(rng.below(kReplicas - 1));
      router.kill_replica(shard, replica);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      router.restart_replica(shard, replica);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      router.consolidate();
    }
  });

  for (size_t t = 0; t < threads.size() - 1; ++t) {
    threads[t].join();
  }
  stop_chaos.store(true, std::memory_order_release);
  threads.back().join();

  router.flush();
  // Two rounds: the first repairs any replica restarted after the chaos
  // thread's last consolidate, the second folds those repairs' staging.
  router.consolidate();
  router.consolidate();

  // Exactly-once: every accepted query fired its callback once — hedges and
  // failovers may race, duplicates and drops may not.
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i]->load(std::memory_order_relaxed), 1) << "query slot " << i;
  }

  // Convergence: every replica of every shard holds identical content.
  for (unsigned s = 0; s < router.num_shards(); ++s) {
    const auto reference = router.replica_dump(s, 0);
    EXPECT_FALSE(reference.empty()) << "shard " << s << " lost everything";
    for (unsigned r = 1; r < kReplicas; ++r) {
      EXPECT_EQ(router.replica_dump(s, r), reference)
          << "shard " << s << " replica " << r << " diverged after anti-entropy";
    }
  }
}

}  // namespace
}  // namespace tagmatch

// Seed plumbing for randomized tests. Every randomized suite draws its seed
// through test_seed() so a failing run is replayable:
//
//   * TAGMATCH_TEST_SEED=<n> overrides every default seed in the binary
//     (the nightly chaos CI job sets it to a random value and logs it);
//   * TAGMATCH_SEED_TRACE(seed) attaches the active seed to any gtest
//     failure inside its scope, so the log of a red run always contains the
//     exact command to reproduce it.
#ifndef TAGMATCH_TESTS_TEST_SEED_H_
#define TAGMATCH_TESTS_TEST_SEED_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace tagmatch::test {

inline uint64_t test_seed(uint64_t default_seed) {
  const char* env = std::getenv("TAGMATCH_TEST_SEED");
  if (env == nullptr || *env == '\0') {
    return default_seed;
  }
  char* end = nullptr;
  unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') {
    std::fprintf(stderr, "ignoring malformed TAGMATCH_TEST_SEED=\"%s\"\n", env);
    return default_seed;
  }
  return static_cast<uint64_t>(value);
}

}  // namespace tagmatch::test

#define TAGMATCH_SEED_TRACE(seed) \
  SCOPED_TRACE(::testing::Message() << "replay with TAGMATCH_TEST_SEED=" << (seed))

#endif  // TAGMATCH_TESTS_TEST_SEED_H_

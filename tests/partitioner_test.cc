#include "src/core/partitioner.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"

namespace tagmatch {
namespace {

std::vector<BitVector192> random_filters(size_t n, unsigned bits_per_filter, uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector192> filters(n);
  for (auto& f : filters) {
    for (unsigned i = 0; i < bits_per_filter; ++i) {
      f.set(static_cast<unsigned>(rng.below(192)));
    }
  }
  return filters;
}

// Every input index appears in exactly one partition.
void expect_exact_cover(const std::vector<Partition>& parts, size_t n) {
  std::set<uint32_t> seen;
  for (const auto& p : parts) {
    for (uint32_t m : p.members) {
      EXPECT_TRUE(seen.insert(m).second) << "index " << m << " in two partitions";
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(Partitioner, EmptyInput) {
  EXPECT_TRUE(balance_partitions({}, 10).empty());
}

TEST(Partitioner, ExactCoverAndMaskInvariant) {
  auto filters = random_filters(5000, 30, 1);
  auto parts = balance_partitions(filters, 100);
  expect_exact_cover(parts, filters.size());
  for (const auto& p : parts) {
    for (uint32_t m : p.members) {
      EXPECT_TRUE(p.mask.subset_of(filters[m]))
          << "member filter must contain the partition mask";
    }
  }
}

TEST(Partitioner, RespectsMaxSizeWhenSplittable) {
  auto filters = random_filters(10000, 30, 2);
  auto parts = balance_partitions(filters, 500);
  for (const auto& p : parts) {
    // Random 30-bit filters are always splittable well below 500; the only
    // oversized partitions would be duplicate filters, which our generator
    // essentially never produces.
    EXPECT_LE(p.members.size(), 500u);
  }
}

TEST(Partitioner, IdenticalFiltersYieldOversizedPartition) {
  BitVector192 f;
  f.set(10);
  f.set(70);
  std::vector<BitVector192> filters(100, f);
  auto parts = balance_partitions(filters, 10);
  // Identical filters can never be split: one partition with all 100.
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].members.size(), 100u);
  EXPECT_TRUE(parts[0].mask.subset_of(f));
}

TEST(Partitioner, EmptyFilterGoesToResidualPartition) {
  std::vector<BitVector192> filters = random_filters(50, 20, 3);
  filters.push_back(BitVector192());  // The empty set's filter.
  auto parts = balance_partitions(filters, 8);
  expect_exact_cover(parts, filters.size());
  bool found_empty = false;
  for (const auto& p : parts) {
    for (uint32_t m : p.members) {
      if (filters[m].empty()) {
        found_empty = true;
        EXPECT_TRUE(p.mask.empty()) << "empty filter must live under the empty mask";
      }
    }
  }
  EXPECT_TRUE(found_empty);
}

TEST(Partitioner, NonResidualMasksAreNonEmpty) {
  auto filters = random_filters(2000, 25, 4);
  auto parts = balance_partitions(filters, 100);
  for (const auto& p : parts) {
    bool all_members_nonempty = true;
    for (uint32_t m : p.members) {
      all_members_nonempty &= !filters[m].empty();
    }
    if (all_members_nonempty) {
      // The paper's emission condition: mask != empty-set (except the
      // residual partition holding undistinguishable filters).
      if (p.mask.empty()) {
        // Permitted only if the members could not be discriminated at all —
        // i.e. they are all identical.
        for (uint32_t m : p.members) {
          EXPECT_EQ(filters[m], filters[p.members[0]]);
        }
      }
    }
  }
}

TEST(Partitioner, BalancedSplitsKeepPartitionCountReasonable) {
  // With balanced pivoting, n items and MAX_P cap should produce on the
  // order of n / MAX_P partitions, not wildly more (a degenerate pivot
  // choice would explode the count).
  auto filters = random_filters(20000, 30, 5);
  auto parts = balance_partitions(filters, 1000);
  EXPECT_LE(parts.size(), 200u);  // ~20 ideal; allow 10x slack.
  EXPECT_GE(parts.size(), 20u);
}

TEST(Partitioner, SmallerMaxPMeansMorePartitions) {
  auto filters = random_filters(8000, 30, 6);
  auto coarse = balance_partitions(filters, 4000);
  auto fine = balance_partitions(filters, 250);
  EXPECT_GT(fine.size(), coarse.size());
}

TEST(Partitioner, MaskSubsetOfQueryFindsAllMatchingPartitions) {
  // End-to-end partitioning property used by pre-processing: for any query
  // q, the set of partitions containing filters f ⊆ q is exactly the set of
  // partitions whose mask ⊆ q ... restricted to partitions that contain at
  // least one actual subset. (Masks are subsets of all members, so
  // partitions with a matching member always pass the mask check.)
  auto filters = random_filters(3000, 10, 7);
  auto parts = balance_partitions(filters, 64);
  Rng rng(8);
  for (int iter = 0; iter < 50; ++iter) {
    BitVector192 q = filters[rng.below(filters.size())];
    for (int i = 0; i < 30; ++i) {
      q.set(static_cast<unsigned>(rng.below(192)));
    }
    for (const auto& p : parts) {
      bool any_member_matches = false;
      for (uint32_t m : p.members) {
        any_member_matches |= filters[m].subset_of(q);
      }
      if (any_member_matches) {
        EXPECT_TRUE(p.mask.subset_of(q));
      }
    }
  }
}

}  // namespace
}  // namespace tagmatch

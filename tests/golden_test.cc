// Golden regression tests: fingerprints of deterministic outputs (workload
// generation, Bloom encoding, partitioning). These guard against accidental
// behaviour changes — any intentional change to a generator or encoder must
// update the expected fingerprints here, consciously.
#include <gtest/gtest.h>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/core/partitioner.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"

namespace tagmatch {
namespace {

// Order-sensitive 64-bit fingerprint of a byte-like stream.
class Fingerprint {
 public:
  void mix(uint64_t v) { state_ = mix64(state_ ^ v); }
  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 0x5bd1e995u;
};

TEST(Golden, WorkloadDatabaseFingerprint) {
  workload::WorkloadConfig wc;
  wc.seed = 42;
  wc.num_users = 500;
  wc.num_publishers = 100;
  wc.vocabulary_size = 1000;
  workload::TwitterWorkload w(wc);
  auto db = w.generate_database();
  Fingerprint fp;
  fp.mix(db.size());
  for (const auto& op : db) {
    fp.mix(op.key);
    for (workload::TagId t : op.tags) {
      fp.mix(t);
    }
  }
  // Regenerate with: print fp.value() and update.
  EXPECT_EQ(fp.value(), 0x847a011ca9cfaf7full);
}

TEST(Golden, QueryGenerationFingerprint) {
  workload::WorkloadConfig wc;
  wc.seed = 42;
  wc.num_users = 500;
  wc.num_publishers = 100;
  wc.vocabulary_size = 1000;
  workload::TwitterWorkload w(wc);
  auto db = w.generate_database();
  auto queries = w.generate_queries(db, 100, 2, 4);
  Fingerprint fp;
  for (const auto& q : queries) {
    fp.mix(q.tags.size());
    for (workload::TagId t : q.tags) {
      fp.mix(t);
    }
  }
  EXPECT_EQ(fp.value(), 0xd8a08c5377967bd6ull);
}

TEST(Golden, TagEncodingFingerprint) {
  // The Bloom encoding of TagIds is part of the persistence format's
  // implicit contract (saved filters must keep matching freshly encoded
  // queries).
  Fingerprint fp;
  for (uint32_t i = 0; i < 64; ++i) {
    BitVector192 bits =
        workload::encode_tags({workload::make_hashtag(i % 12, i * 131)}).bits();
    fp.mix(bits.block(0));
    fp.mix(bits.block(1));
    fp.mix(bits.block(2));
  }
  EXPECT_EQ(fp.value(), 0xbdc14b52363d270eull);
}

TEST(Golden, StringTagEncodingFingerprint) {
  Fingerprint fp;
  for (int i = 0; i < 32; ++i) {
    BloomFilter192 f;
    f.add_tag("tag" + std::to_string(i * 977));
    fp.mix(f.bits().block(0));
    fp.mix(f.bits().block(1));
    fp.mix(f.bits().block(2));
  }
  EXPECT_EQ(fp.value(), 0x336c427083628681ull);
}

TEST(Golden, PartitioningFingerprint) {
  // Algorithm 1 is deterministic for a given input; partition structure is
  // part of the saved-index contract.
  Rng rng(99);
  std::vector<BitVector192> filters(2000);
  for (auto& f : filters) {
    for (int b = 0; b < 12; ++b) {
      f.set(static_cast<unsigned>(rng.below(192)));
    }
  }
  auto parts = balance_partitions(filters, 100);
  Fingerprint fp;
  fp.mix(parts.size());
  for (const auto& p : parts) {
    fp.mix(p.mask.block(0) ^ p.mask.block(1) ^ p.mask.block(2));
    fp.mix(p.members.size());
    for (uint32_t m : p.members) {
      fp.mix(m);
    }
  }
  EXPECT_EQ(fp.value(), 0xe2f095d76e28c428ull);
}

}  // namespace
}  // namespace tagmatch

// Statistical property tests: empirical behaviour of the Bloom encoding and
// of the workload generator must match the theory the paper relies on.
// All randomness is seeded, so the assertions are deterministic.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <set>

#include "src/bloom/bloom_filter.h"
#include "src/common/rng.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"

namespace tagmatch {
namespace {

TEST(BloomStatistics, FillRateMatchesTheory) {
  // A filter with n random tags has each bit set with probability
  // 1 - e^{-kn/m} (the term inside footnote 3's formula). Check the
  // empirical mean popcount across many filters for several n.
  Rng rng(2024);
  for (unsigned n : {1u, 5u, 10u, 20u}) {
    double total_bits = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
      std::vector<workload::TagId> tags;
      for (unsigned i = 0; i < n; ++i) {
        tags.push_back(static_cast<workload::TagId>(rng.next()));
      }
      total_bits += workload::encode_tags(tags).popcount();
    }
    const double m = BloomFilter192::kNumBits;
    const double k = BloomFilter192::kNumHashes;
    double expected = m * (1.0 - std::exp(-k * n / m));
    double observed = total_bits / trials;
    EXPECT_NEAR(observed, expected, expected * 0.05) << "n=" << n;
  }
}

TEST(BloomStatistics, BitPositionsRoughlyUniform) {
  // No bit position should be systematically favoured by the double-hashing
  // scheme: over many single-tag filters, per-position frequencies must be
  // within a loose band around the mean.
  Rng rng(7);
  std::array<int, BitVector192::kBits> counts{};
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    std::vector<workload::TagId> tags = {static_cast<workload::TagId>(rng.next())};
    BitVector192 bits = workload::encode_tags(tags).bits();
    for (unsigned pos = 0; pos < BitVector192::kBits; ++pos) {
      counts[pos] += bits.test(pos) ? 1 : 0;
    }
  }
  double mean = 0;
  for (int c : counts) {
    mean += c;
  }
  mean /= BitVector192::kBits;
  for (unsigned pos = 0; pos < BitVector192::kBits; ++pos) {
    EXPECT_GT(counts[pos], mean * 0.8) << "position " << pos << " underused";
    EXPECT_LT(counts[pos], mean * 1.2) << "position " << pos << " overused";
  }
}

TEST(WorkloadStatistics, FirstLanguageSharesFollowTwitterDistribution) {
  // English must dominate (~51% of monolingual users' tags) with Japanese
  // second, per Hong et al.'s Twitter shares used by the generator.
  workload::WorkloadConfig wc;
  wc.num_users = 20000;
  wc.num_publishers = 2000;
  wc.vocabulary_size = 20000;
  wc.bilingual_fraction = 0.0;  // Isolate the first-language distribution.
  workload::TwitterWorkload w(wc);
  auto db = w.generate_database();
  std::map<unsigned, uint64_t> lang_tags;
  uint64_t total = 0;
  for (const auto& op : db) {
    for (workload::TagId t : op.tags) {
      if (!workload::is_publisher_tag(t)) {
        ++lang_tags[workload::tag_language(t)];
        ++total;
      }
    }
  }
  double en = static_cast<double>(lang_tags[0]) / static_cast<double>(total);
  double ja = static_cast<double>(lang_tags[1]) / static_cast<double>(total);
  EXPECT_NEAR(en, 0.511, 0.04);
  EXPECT_NEAR(ja, 0.190, 0.03);
  EXPECT_GT(en, ja);
}

TEST(WorkloadStatistics, BilingualFractionRespected) {
  // With bilingual_fraction = 1, users draw interests from two language
  // streams; the second-language distribution (English-heavy) shifts the
  // aggregate toward English even for non-English first languages. Sanity:
  // more languages per user's interests on average than monolingual.
  workload::WorkloadConfig mono;
  mono.num_users = 4000;
  mono.num_publishers = 800;
  mono.vocabulary_size = 8000;
  mono.bilingual_fraction = 0.0;
  workload::WorkloadConfig bi = mono;
  bi.bilingual_fraction = 1.0;

  auto count_langs_per_user = [](const std::vector<workload::AddOp>& db) {
    std::map<uint32_t, std::set<unsigned>> langs;
    for (const auto& op : db) {
      for (workload::TagId t : op.tags) {
        if (!workload::is_publisher_tag(t)) {
          langs[op.key].insert(workload::tag_language(t));
        }
      }
    }
    double total = 0;
    for (const auto& [user, set] : langs) {
      total += static_cast<double>(set.size());
    }
    return total / static_cast<double>(langs.size());
  };

  workload::TwitterWorkload wm(mono);
  workload::TwitterWorkload wb(bi);
  auto db_mono = wm.generate_database();
  auto db_bi = wb.generate_database();
  EXPECT_GT(count_langs_per_user(db_bi), count_langs_per_user(db_mono));
}

TEST(WorkloadStatistics, FollowerCountsHeavyTailed) {
  workload::WorkloadConfig wc;
  wc.num_users = 10000;
  wc.num_publishers = 1000;
  wc.vocabulary_size = 10000;
  workload::TwitterWorkload w(wc);
  auto db = w.generate_database();
  std::map<uint32_t, uint32_t> follows_per_user;
  for (const auto& op : db) {
    ++follows_per_user[op.key];
  }
  std::map<uint32_t, uint32_t> histogram;  // follow count -> #users
  for (const auto& [user, n] : follows_per_user) {
    ++histogram[n];
  }
  // Mode at the minimum, monotone-ish decay: 1-follow users outnumber
  // 4-follow users, which outnumber 16-follow users.
  EXPECT_GT(histogram[1], histogram[4]);
  EXPECT_GT(histogram[4], histogram[16]);
  // But the tail exists.
  uint32_t heavy = 0;
  for (const auto& [n, users] : histogram) {
    if (n >= 8) {
      heavy += users;
    }
  }
  EXPECT_GT(heavy, 0u);
}

TEST(WorkloadStatistics, TagPopularitySkewMatchesZipfParameter) {
  // Flatter exponent -> smaller top-tag share.
  auto top_share = [](double zipf) {
    workload::WorkloadConfig wc;
    wc.num_users = 5000;
    wc.num_publishers = 1000;
    wc.vocabulary_size = 20000;
    wc.tag_zipf = zipf;
    workload::TwitterWorkload w(wc);
    auto db = w.generate_database();
    std::map<uint32_t, uint64_t> counts;
    uint64_t total = 0;
    for (const auto& op : db) {
      for (workload::TagId t : op.tags) {
        if (!workload::is_publisher_tag(t)) {
          ++counts[workload::tag_base(t)];
          ++total;
        }
      }
    }
    uint64_t top = 0;
    for (const auto& [tag, c] : counts) {
      top = std::max(top, c);
    }
    return static_cast<double>(top) / static_cast<double>(total);
  };
  double steep = top_share(1.05);
  double flat = top_share(0.7);
  EXPECT_GT(steep, flat);
  EXPECT_GT(steep, 0.03);  // Peaked head.
  EXPECT_LT(flat, 0.03);   // Flattened head.
}

}  // namespace
}  // namespace tagmatch

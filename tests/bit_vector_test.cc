#include "src/common/bit_vector.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace tagmatch {
namespace {

TEST(BitVector192, StartsEmpty) {
  BitVector192 v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_EQ(v.leftmost_one(), BitVector192::kBits);
}

TEST(BitVector192, SetTestClearAcrossBlocks) {
  BitVector192 v;
  for (unsigned pos : {0u, 1u, 63u, 64u, 127u, 128u, 191u}) {
    EXPECT_FALSE(v.test(pos));
    v.set(pos);
    EXPECT_TRUE(v.test(pos)) << pos;
  }
  EXPECT_EQ(v.popcount(), 7u);
  v.clear(64);
  EXPECT_FALSE(v.test(64));
  EXPECT_EQ(v.popcount(), 6u);
}

TEST(BitVector192, Bit0IsMsbOfBlock0) {
  BitVector192 v;
  v.set(0);
  EXPECT_EQ(v.block(0), uint64_t{1} << 63);
  v.clear_all();
  v.set(191);
  EXPECT_EQ(v.block(2), uint64_t{1});
}

TEST(BitVector192, LeftmostOne) {
  BitVector192 v;
  v.set(150);
  EXPECT_EQ(v.leftmost_one(), 150u);
  v.set(70);
  EXPECT_EQ(v.leftmost_one(), 70u);
  v.set(3);
  EXPECT_EQ(v.leftmost_one(), 3u);
}

TEST(BitVector192, SubsetBasics) {
  BitVector192 small, big;
  small.set(5);
  small.set(100);
  big = small;
  big.set(180);
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
  BitVector192 empty;
  EXPECT_TRUE(empty.subset_of(small));
  EXPECT_FALSE(small.subset_of(empty));
}

TEST(BitVector192, SubsetMatchesDefinitionRandomized) {
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    BitVector192 a, b;
    for (int i = 0; i < 20; ++i) {
      a.set(static_cast<unsigned>(rng.below(192)));
      b.set(static_cast<unsigned>(rng.below(192)));
    }
    if (rng.chance(0.5)) {
      b |= a;  // Force a ⊆ b half of the time.
    }
    bool expected = true;
    for (unsigned pos = 0; pos < 192; ++pos) {
      if (a.test(pos) && !b.test(pos)) {
        expected = false;
        break;
      }
    }
    EXPECT_EQ(a.subset_of(b), expected);
  }
}

TEST(BitVector192, LexicographicOrderMatchesStringOrder) {
  Rng rng(13);
  for (int iter = 0; iter < 500; ++iter) {
    BitVector192 a, b;
    for (int i = 0; i < 10; ++i) {
      a.set(static_cast<unsigned>(rng.below(192)));
      b.set(static_cast<unsigned>(rng.below(192)));
    }
    EXPECT_EQ(a < b, a.to_string() < b.to_string());
    EXPECT_EQ(a == b, a.to_string() == b.to_string());
  }
}

TEST(BitVector192, CommonPrefixLen) {
  BitVector192 a, b;
  a.set(10);
  b.set(10);
  EXPECT_EQ(BitVector192::common_prefix_len(a, b), BitVector192::kBits);
  b.set(100);
  EXPECT_EQ(BitVector192::common_prefix_len(a, b), 100u);
  b.clear(100);
  b.set(11);
  EXPECT_EQ(BitVector192::common_prefix_len(a, b), 11u);
}

TEST(BitVector192, PrefixClearsTail) {
  BitVector192 a;
  a.set(5);
  a.set(70);
  a.set(130);
  BitVector192 p = a.prefix(71);
  EXPECT_TRUE(p.test(5));
  EXPECT_TRUE(p.test(70));
  EXPECT_FALSE(p.test(130));
  EXPECT_EQ(a.prefix(0), BitVector192());
  EXPECT_EQ(a.prefix(192), a);
  EXPECT_EQ(a.prefix(250), a);
}

TEST(BitVector192, PrefixIsSubsetOfOriginal) {
  Rng rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    BitVector192 a;
    for (int i = 0; i < 15; ++i) {
      a.set(static_cast<unsigned>(rng.below(192)));
    }
    unsigned len = static_cast<unsigned>(rng.below(193));
    BitVector192 p = a.prefix(len);
    EXPECT_TRUE(p.subset_of(a));
    for (unsigned pos = len; pos < 192; ++pos) {
      EXPECT_FALSE(p.test(pos));
    }
    for (unsigned pos = 0; pos < len; ++pos) {
      EXPECT_EQ(p.test(pos), a.test(pos));
    }
  }
}

TEST(BitVector192, BitwiseOps) {
  BitVector192 a, b;
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(190);
  BitVector192 u = a | b;
  EXPECT_TRUE(u.test(1));
  EXPECT_TRUE(u.test(65));
  EXPECT_TRUE(u.test(190));
  BitVector192 i = a & b;
  EXPECT_EQ(i.popcount(), 1u);
  EXPECT_TRUE(i.test(65));
  BitVector192 x = a ^ b;
  EXPECT_EQ(x.popcount(), 2u);
  EXPECT_FALSE(x.test(65));
}

TEST(BitVector192, HashDistinguishes) {
  BitVector192 a, b;
  a.set(0);
  b.set(1);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), a.hash());
}

}  // namespace
}  // namespace tagmatch

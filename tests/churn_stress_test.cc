// Churn stress tests for the epoch-published index: concurrent
// add_set/remove_set/consolidate against concurrent match/stats/for_each_set
// must always observe exactly one published epoch — never a torn index —
// and the broker's staged-churn path must survive subscribe/unsubscribe/
// publish/stats running flat out against the background consolidator.
//
// These run in the TSan CI job (regex `ChurnStress`); the assertions are
// deliberately about epoch atomicity rather than timing, so they hold under
// TSan's heavy serialization as well as uninstrumented -O2.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/broker/broker.h"
#include "src/core/tagmatch.h"

namespace tagmatch {
namespace {

using Key = TagMatch::Key;

TagMatchConfig churn_config() {
  TagMatchConfig c;
  c.cpu_only = true;  // Deterministic; the GPU switchover has its own tests.
  c.num_threads = 2;
  c.batch_size = 8;
  c.batch_timeout = std::chrono::milliseconds(2);
  c.max_partition_size = 16;
  return c;
}

// A writer publishes epochs 1..N, epoch e adding key e under a filter that
// every probe query covers. Readers sample the published-epoch counter
// before and after each match: the result must contain every key of the
// epoch published before the query began, and no key from beyond the epoch
// published after it returned — i.e. the query saw one atomic snapshot from
// the window, never a half-built index.
TEST(ChurnStress, QueriesSeeExactlyOnePublishedEpoch) {
  TagMatch tm(churn_config());
  constexpr Key kEpochs = 30;
  std::atomic<Key> published{0};
  std::atomic<bool> done{false};

  // Superset probe: covers {"all", "gX"} for every X, so a query must
  // return exactly the keys of one published epoch.
  std::vector<std::string> probe = {"all", "g0", "g1", "g2", "g3",
                                    "g4", "g5", "g6", "g7"};

  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const Key lo = published.load(std::memory_order_acquire);
        auto keys = tm.match_unique(probe);
        const Key hi = published.load(std::memory_order_acquire);
        std::set<Key> got(keys.begin(), keys.end());
        EXPECT_EQ(got.size(), keys.size());
        for (Key k = 1; k <= lo; ++k) {
          EXPECT_TRUE(got.count(k)) << "epoch " << lo << " key " << k << " missing";
        }
        for (Key k : got) {
          EXPECT_GE(k, 1u);
          // hi + 1, not hi: the writer bumps `published` only after
          // consolidate() returns, so a query racing the tail of a
          // consolidate can see epoch e while the counter still reads
          // e - 1. Anything beyond that is a genuinely torn index.
          EXPECT_LE(k, hi + 1) << "key from an unpublished epoch leaked out";
        }
      }
    });
  }
  // Bugfix surface: stats() used to read the flat index unlocked while
  // consolidate() rebuilt it — TSan flags the old code on this loop alone.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto s = tm.stats();
      EXPECT_LE(s.unique_sets, static_cast<uint64_t>(kEpochs));
      EXPECT_LE(s.total_keys, static_cast<uint64_t>(kEpochs));
      EXPECT_GE(s.last_consolidate_seconds, 0.0);
    }
  });
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      uint64_t keys_seen = 0;
      tm.for_each_set([&](const BloomFilter192&, std::span<const Key> keys,
                          std::span<const uint64_t>) { keys_seen += keys.size(); });
      EXPECT_LE(keys_seen, static_cast<uint64_t>(kEpochs));
    }
  });

  for (Key e = 1; e <= kEpochs; ++e) {
    std::vector<std::string> tags = {"all", "g" + std::to_string(e % 8)};
    tm.add_set(tags, e);
    tm.consolidate();
    published.store(e, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(tm.match_unique(probe).size(), static_cast<size_t>(kEpochs));
}

// Removals race the same way: a (filter, key) pair removed at epoch e must
// be fully gone once a query starts after that publish, with no phantom
// leftovers (the duplicate-add/remove-first-occurrence bug showed up
// exactly here).
TEST(ChurnStress, RemovalChurnNeverLeavesPhantoms) {
  TagMatch tm(churn_config());
  std::atomic<bool> done{false};
  std::vector<std::string> tags = {"flip"};
  std::vector<std::string> probe = {"flip", "pad"};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto keys = tm.match(probe);
      // The pair is either fully present or fully absent — duplicated
      // entries (the old remove-first-occurrence bug) show up as size > 1.
      EXPECT_LE(keys.size(), 1u);
    }
  });
  for (int cycle = 0; cycle < 40; ++cycle) {
    tm.add_set(tags, 1);
    tm.add_set(tags, 1);  // Duplicate staging, deduped on apply.
    tm.consolidate();
    tm.remove_set(tags, 1);
    tm.consolidate();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(tm.match(probe).empty());
}

// The broker's staged-churn path end to end: subscribe/unsubscribe churn
// trips consolidate_after_churn while publishes and stats polls run
// concurrently with the background consolidator. Under the old
// exclusive-gate contract this serialized; now it all overlaps, and TSan
// cleanliness of this test is the point.
TEST(ChurnStressBroker, StagedChurnOverlapsPublishes) {
  broker::BrokerConfig config;
  config.engine = churn_config();
  config.consolidate_interval = std::chrono::milliseconds(2);
  config.consolidate_after_churn = 8;  // Trip the early-consolidate path.
  broker::Broker broker(config);

  auto listener = broker.connect();
  broker.subscribe(listener, {"stable"});

  std::atomic<bool> done{false};
  std::atomic<uint64_t> accepted{0};

  std::thread churner([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto sub = broker.connect();
      std::vector<broker::SubscriptionId> ids;
      for (int i = 0; i < 4; ++i) {
        ids.push_back(broker.subscribe(sub, {"churn" + std::to_string(i)}));
      }
      for (auto id : ids) {
        broker.unsubscribe(sub, id);
      }
      broker.disconnect(sub);
    }
  });
  std::thread publisher([&] {
    while (!done.load(std::memory_order_acquire)) {
      broker::Message m;
      m.tags = {"stable", "churn1"};
      m.payload = "p";
      if (broker.publish(std::move(m)) == broker::Broker::PublishResult::kAccepted) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto s = broker.stats();
      EXPECT_GE(s.subscribers, 1u);
      broker.metrics_snapshot();
      while (broker.poll(listener)) {
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  done.store(true, std::memory_order_release);
  churner.join();
  publisher.join();
  poller.join();

  broker.flush();
  while (broker.poll(listener)) {
  }
  auto s = broker.stats();
  EXPECT_EQ(s.published, accepted.load());
  EXPECT_GE(s.consolidations, 1u);
  // Every accepted publish matched the stable subscription.
  EXPECT_GE(s.deliveries + s.dropped, accepted.load());
}

}  // namespace
}  // namespace tagmatch

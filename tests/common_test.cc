#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/common/hash.h"
#include "src/common/mpmc_queue.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"

namespace tagmatch {
namespace {

TEST(Hash, Fnv1aKnownValue) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(Hash, Hash128SecondHashIsOdd) {
  for (const char* s : {"", "a", "hello", "tag12345"}) {
    EXPECT_EQ(hash128(s).h2 & 1, 1u) << s;
  }
}

TEST(Hash, Mix64Bijective) {
  // Spot-check injectivity on a sample.
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outs.insert(mix64(i));
  }
  EXPECT_EQ(outs.size(), 10000u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.between(2, 4);
    ASSERT_GE(v, 2u);
    ASSERT_LE(v, 4u);
    saw_lo |= (v == 2);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Zipf, SkewsTowardLowRanks) {
  Rng rng(4);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
  // Rank 0 of a 1000-element s=1.0 Zipf carries ~13% of the mass.
  EXPECT_GT(counts[0], 100000 / 20);
}

TEST(Discrete, FollowsWeights) {
  Rng rng(5);
  DiscreteSampler d({80.0, 15.0, 5.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[d.sample(rng)];
  }
  EXPECT_NEAR(counts[0] / 100000.0, 0.80, 0.02);
  EXPECT_NEAR(counts[1] / 100000.0, 0.15, 0.02);
  EXPECT_NEAR(counts[2] / 100000.0, 0.05, 0.02);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(MpmcQueue, CloseDrainsThenReturnsNullopt) {
  MpmcQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpmcQueue, CapacityBlocksTryPush) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  q.close();
  for (size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count++; });
    }
  }  // Destructor drains.
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForFromWithinPoolTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::promise<void> done;
  pool.submit([&] {
    pool.parallel_for(50, [&](size_t) { total++; });
    done.set_value();
  });
  done.get_future().wait();
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](size_t) { calls++; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](size_t i) { EXPECT_EQ(i, 0u); calls++; });
  EXPECT_EQ(calls, 1);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.record(i);
  }
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.6);
  EXPECT_NEAR(s.percentile(99), 99, 1.1);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleSet, MergeCombines) {
  SampleSet a, b;
  a.record(1);
  b.record(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2);
}

TEST(SampleSet, EmptyReportsNaN) {
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.percentile(50)));
  EXPECT_TRUE(std::isnan(s.percentile(0)));
  EXPECT_TRUE(std::isnan(s.percentile(100)));
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.record(42);
  EXPECT_DOUBLE_EQ(s.mean(), 42);
  EXPECT_DOUBLE_EQ(s.min(), 42);
  EXPECT_DOUBLE_EQ(s.max(), 42);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42);
}

TEST(SampleSet, MergeInvalidatesCachedOrder) {
  // percentile() caches the sorted order; a merge after a query must
  // invalidate it so later order statistics see the merged samples.
  SampleSet a, b;
  a.record(10);
  EXPECT_DOUBLE_EQ(a.percentile(100), 10);  // Forces the sort cache.
  b.record(5);
  b.record(20);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 5);
  EXPECT_DOUBLE_EQ(a.max(), 20);
  EXPECT_DOUBLE_EQ(a.percentile(50), 10);

  // Merging an empty set keeps statistics intact.
  SampleSet empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.percentile(100), 20);

  // Record after a cached sort must also invalidate.
  a.record(1);
  EXPECT_DOUBLE_EQ(a.min(), 1);
}

TEST(Format, HumanReadable) {
  EXPECT_EQ(format_si(1500), "1.50K");
  EXPECT_EQ(format_si(2500000), "2.50M");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_duration_ms(1500), "1.50 s");
  EXPECT_EQ(format_duration_ms(0.5), "500 us");
}

}  // namespace
}  // namespace tagmatch

#include "src/baselines/gpuonly/gpu_only_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/baselines/scan/scan_matchers.h"
#include "src/common/rng.h"
#include "src/workload/tags.h"

namespace tagmatch::baselines {
namespace {

using Key = uint32_t;
using workload::TagId;

std::vector<Key> sorted(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

GpuOnlyConfig test_config() {
  GpuOnlyConfig c;
  c.costs.enforce = false;
  c.num_sms = 1;
  c.memory_capacity = 64 << 20;
  c.max_partition_size = 32;
  return c;
}

BitVector192 random_filter(Rng& rng, unsigned tags) {
  std::vector<TagId> ids;
  for (unsigned i = 0; i < tags; ++i) {
    ids.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(150))));
  }
  return workload::encode_tags(ids).bits();
}

TEST(GpuOnlyMatcher, AgreesWithLinearScan) {
  Rng rng(41);
  GpuOnlyMatcher gpu(test_config());
  LinearScanMatcher cpu;
  for (int i = 0; i < 500; ++i) {
    BitVector192 f = random_filter(rng, 1 + static_cast<unsigned>(rng.below(3)));
    Key k = static_cast<Key>(rng.below(200));
    gpu.add(f, k);
    cpu.add(f, k);
  }
  gpu.build();
  EXPECT_GT(gpu.partition_count(), 1u);

  std::vector<BitVector192> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(random_filter(rng, 3 + static_cast<unsigned>(rng.below(5))));
  }
  auto results = gpu.match_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(sorted(std::move(results[i])), sorted(cpu.match(batch[i])));
  }
}

TEST(GpuOnlyMatcher, EmptyDatabase) {
  GpuOnlyMatcher gpu(test_config());
  gpu.build();
  BitVector192 q;
  q.set(5);
  auto results = gpu.match_batch(std::span(&q, 1));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].empty());
}

TEST(GpuOnlyMatcher, SelectiveQueriesProduceFewQueueFills) {
  // Queries that match no partition mask should simply yield empty results
  // (the regime where the GPU-only design performs well).
  Rng rng(42);
  GpuOnlyMatcher gpu(test_config());
  for (int i = 0; i < 200; ++i) {
    gpu.add(random_filter(rng, 3), static_cast<Key>(i));
  }
  gpu.build();
  // An empty query covers only the residual/empty-mask partitions.
  BitVector192 empty_query;
  auto results = gpu.match_batch(std::span(&empty_query, 1));
  EXPECT_TRUE(results[0].empty());
}

TEST(GpuOnlyMatcher, OverflowFallbackExact) {
  GpuOnlyConfig config = test_config();
  config.result_capacity = 4;
  GpuOnlyMatcher gpu(config);
  BitVector192 f;
  f.set(9);
  for (Key k = 0; k < 64; ++k) {
    gpu.add(f, k);
  }
  gpu.build();
  BitVector192 q = f;
  q.set(100);
  auto results = gpu.match_batch(std::span(&q, 1));
  EXPECT_EQ(results[0].size(), 64u);
}

}  // namespace
}  // namespace tagmatch::baselines

// Model-based differential fuzzing of the TagMatch engine: random sequences
// of add_set / remove_set / consolidate / match / match_unique, executed in
// parallel against a trivially correct in-memory model, under randomly drawn
// engine configurations. Seeds are fixed (and overridable via
// TAGMATCH_TEST_SEED, see tests/test_seed.h), so failures are reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "tests/test_seed.h"
#include "src/core/tagmatch.h"
#include "src/shard/sharded_tagmatch.h"
#include "src/sig/signature_scheme.h"
#include "src/workload/tags.h"

namespace tagmatch {
namespace {

using Key = TagMatch::Key;
using workload::TagId;

// Reference model of the §2 interface: a set of (filter, key) pairs with
// staged updates — re-adding an existing pair is idempotent, and a remove
// erases the pair outright (the engine dedupes on consolidate).
class Model {
 public:
  void add(const BitVector192& filter, Key key) { staged_adds_.emplace_back(filter, key); }

  void remove(const BitVector192& filter, Key key) {
    staged_removes_.emplace_back(filter, key);
  }

  void consolidate() {
    for (const auto& [f, k] : staged_adds_) {
      auto& keys = table_[f.to_string()];
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    for (const auto& [f, k] : staged_removes_) {
      auto it = table_.find(f.to_string());
      if (it == table_.end()) {
        continue;
      }
      it->second.erase(std::remove(it->second.begin(), it->second.end(), k),
                       it->second.end());
      if (it->second.empty()) {
        table_.erase(it);
      }
    }
    staged_adds_.clear();
    staged_removes_.clear();
    // Rebuild filter cache.
    filters_.clear();
    for (const auto& [bits, keys] : table_) {
      BitVector192 f;
      for (unsigned i = 0; i < BitVector192::kBits; ++i) {
        if (bits[i] == '1') {
          f.set(i);
        }
      }
      filters_.emplace_back(f, &keys);
    }
  }

  std::vector<Key> match(const BitVector192& q) const {
    std::vector<Key> out;
    for (const auto& [f, keys] : filters_) {
      if (f.subset_of(q)) {
        out.insert(out.end(), keys->begin(), keys->end());
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<Key> match_unique(const BitVector192& q) const {
    std::vector<Key> out = match(q);
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  const std::vector<std::pair<BitVector192, const std::vector<Key>*>>& filters() const {
    return filters_;
  }

 private:
  std::map<std::string, std::vector<Key>> table_;
  std::vector<std::pair<BitVector192, const std::vector<Key>*>> filters_;
  std::vector<std::pair<BitVector192, Key>> staged_adds_;
  std::vector<std::pair<BitVector192, Key>> staged_removes_;
};

TagMatchConfig random_config(Rng& rng) {
  TagMatchConfig c;
  c.num_threads = 1 + static_cast<unsigned>(rng.below(3));
  c.num_gpus = 1 + static_cast<unsigned>(rng.below(2));
  c.streams_per_gpu = 1 + static_cast<unsigned>(rng.below(3));
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 128ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 1 + static_cast<uint32_t>(rng.below(32));
  c.max_partition_size = 1 + static_cast<uint32_t>(rng.below(128));
  c.cpu_only = rng.chance(0.2);
  c.enable_prefix_filter = rng.chance(0.8);
  c.packed_output = rng.chance(0.8);
  c.double_buffered_results = rng.chance(0.8);
  if (rng.chance(0.3)) {
    c.gpu_table_mode = TagMatchConfig::GpuTableMode::kPartition;
  }
  if (rng.chance(0.3)) {
    c.result_buffer_entries = 4;  // Exercise the overflow fallback.
  }
  if (rng.chance(0.3)) {
    c.match_staged_adds = true;  // Note: model still consolidates eagerly
                                 // before matching in this harness.
  }
  // Every registered signature scheme must uphold the same matching
  // semantics; drawing one here runs the whole differential suite under all
  // of them across the seed matrix.
  auto schemes = sig::all_schemes();
  c.signature_scheme = schemes[rng.below(schemes.size())];
  return c;
}

BitVector192 random_filter(Rng& rng, uint32_t universe, unsigned max_tags) {
  std::vector<TagId> tags;
  unsigned n = static_cast<unsigned>(rng.below(max_tags + 1));
  for (unsigned i = 0; i < n; ++i) {
    tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(universe))));
  }
  return workload::encode_tags(tags).bits();
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, RandomOpSequencesAgree) {
  const uint64_t seed = test::test_seed(GetParam());
  TAGMATCH_SEED_TRACE(seed);
  Rng rng(seed);
  TagMatchConfig config = random_config(rng);
  TagMatch engine(config);
  Model model;

  const uint32_t universe = 50 + static_cast<uint32_t>(rng.below(200));
  std::vector<std::pair<BitVector192, Key>> added;  // For remove targeting.

  const int ops = 300;
  for (int op = 0; op < ops; ++op) {
    double roll = rng.uniform();
    if (roll < 0.45) {
      BitVector192 f = random_filter(rng, universe, 4);
      Key k = static_cast<Key>(rng.below(50));
      engine.add_set(BloomFilter192(f), k);
      model.add(f, k);
      added.emplace_back(f, k);
    } else if (roll < 0.55 && !added.empty()) {
      // Remove either an existing pair or a random (likely absent) one.
      if (rng.chance(0.7)) {
        auto& [f, k] = added[rng.below(added.size())];
        engine.remove_set(BloomFilter192(f), k);
        model.remove(f, k);
      } else {
        BitVector192 f = random_filter(rng, universe, 4);
        engine.remove_set(BloomFilter192(f), 999);
        model.remove(f, 999);
      }
    } else if (roll < 0.65) {
      engine.consolidate();
      model.consolidate();
    } else {
      // Match both ways. The model has no staged-visibility mode, so align
      // by consolidating both sides first.
      engine.consolidate();
      model.consolidate();
      BitVector192 q = random_filter(rng, universe, 8);
      if (rng.chance(0.5) && !model.filters().empty()) {
        // Bias queries toward supersets of existing entries.
        q |= model.filters()[rng.below(model.filters().size())].first;
      }
      auto got = engine.match(BloomFilter192(q));
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, model.match(q)) << "seed " << seed << " op " << op;
      ASSERT_EQ(engine.match_unique(BloomFilter192(q)), model.match_unique(q));
    }
  }
}

// Differential over the sharded serving layer: ShardedTagMatch with 1, 2 and
// 4 shards must return exactly the single engine's key multisets on the same
// op sequence. Matching here deliberately does NOT align consolidation state
// first: when the drawn config has match_staged_adds, staged visibility must
// agree shard-for-shard with the single engine as well.
TEST_P(FuzzDifferential, ShardedAgreesWithSingleEngine) {
  const uint64_t seed = test::test_seed(GetParam());
  TAGMATCH_SEED_TRACE(seed);
  Rng rng(seed * 7919 + 17);
  TagMatchConfig config = random_config(rng);
  TagMatch single(config);

  std::vector<std::unique_ptr<shard::ShardedTagMatch>> sharded;
  for (unsigned n : {1u, 2u, 4u}) {
    shard::ShardedConfig sc;
    sc.num_shards = n;
    sc.shard = config;
    if (rng.chance(0.5)) {
      sc.policy = std::make_shared<shard::KeyHashPolicy>();
    }
    sharded.push_back(std::make_unique<shard::ShardedTagMatch>(sc));
  }

  const uint32_t universe = 50 + static_cast<uint32_t>(rng.below(200));
  std::vector<std::pair<BitVector192, Key>> added;

  const int ops = 150;
  for (int op = 0; op < ops; ++op) {
    double roll = rng.uniform();
    if (roll < 0.45) {
      BitVector192 f = random_filter(rng, universe, 4);
      Key k = static_cast<Key>(rng.below(50));
      single.add_set(BloomFilter192(f), k);
      for (auto& s : sharded) {
        s->add_set(BloomFilter192(f), k);
      }
      added.emplace_back(f, k);
    } else if (roll < 0.55 && !added.empty()) {
      auto& [f, k] = added[rng.below(added.size())];
      single.remove_set(BloomFilter192(f), k);
      for (auto& s : sharded) {
        s->remove_set(BloomFilter192(f), k);
      }
    } else if (roll < 0.65) {
      single.consolidate();
      for (auto& s : sharded) {
        s->consolidate();
      }
    } else {
      BitVector192 q = random_filter(rng, universe, 8);
      if (rng.chance(0.5) && !added.empty()) {
        q |= added[rng.below(added.size())].first;
      }
      auto want = single.match(BloomFilter192(q));
      std::sort(want.begin(), want.end());
      auto want_unique = single.match_unique(BloomFilter192(q));
      for (auto& s : sharded) {
        auto got = s->match(BloomFilter192(q));
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, want) << "seed " << seed << " op " << op << " shards "
                             << s->num_shards() << " policy " << s->policy().name();
        ASSERT_EQ(s->match_unique(BloomFilter192(q)), want_unique)
            << "seed " << seed << " op " << op << " shards " << s->num_shards();
      }
    }
  }
}

// One engine per registered signature scheme runs the same op sequence over
// the same pre-encoded filters, in lockstep with the model. Schemes only
// change how bits are placed at encode time and which subset-test variant
// the matcher executes — over identical raw filters the match results must
// be byte-identical across every scheme (and equal to the model).
TEST_P(FuzzDifferential, AllSchemesReturnByteIdenticalResults) {
  const uint64_t seed = test::test_seed(GetParam());
  TAGMATCH_SEED_TRACE(seed);
  Rng rng(seed * 104729 + 31);
  TagMatchConfig base = random_config(rng);
  Model model;

  std::vector<std::unique_ptr<TagMatch>> engines;
  for (const sig::SignatureScheme* s : sig::all_schemes()) {
    TagMatchConfig config = base;
    config.signature_scheme = s;
    engines.push_back(std::make_unique<TagMatch>(config));
  }

  const uint32_t universe = 50 + static_cast<uint32_t>(rng.below(200));
  std::vector<std::pair<BitVector192, Key>> added;

  const int ops = 150;
  for (int op = 0; op < ops; ++op) {
    double roll = rng.uniform();
    if (roll < 0.45) {
      BitVector192 f = random_filter(rng, universe, 4);
      Key k = static_cast<Key>(rng.below(50));
      for (auto& e : engines) {
        e->add_set(BloomFilter192(f), k);
      }
      model.add(f, k);
      added.emplace_back(f, k);
    } else if (roll < 0.55 && !added.empty()) {
      auto& [f, k] = added[rng.below(added.size())];
      for (auto& e : engines) {
        e->remove_set(BloomFilter192(f), k);
      }
      model.remove(f, k);
    } else if (roll < 0.65) {
      for (auto& e : engines) {
        e->consolidate();
      }
      model.consolidate();
    } else {
      for (auto& e : engines) {
        e->consolidate();
      }
      model.consolidate();
      BitVector192 q = random_filter(rng, universe, 8);
      if (rng.chance(0.5) && !model.filters().empty()) {
        q |= model.filters()[rng.below(model.filters().size())].first;
      }
      const auto want = model.match(q);
      const auto want_unique = model.match_unique(q);
      for (size_t i = 0; i < engines.size(); ++i) {
        auto got = engines[i]->match(BloomFilter192(q));
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, want) << "seed " << seed << " op " << op << " scheme "
                             << sig::all_schemes()[i]->name();
        ASSERT_EQ(engines[i]->match_unique(BloomFilter192(q)), want_unique)
            << "seed " << seed << " op " << op << " scheme "
            << sig::all_schemes()[i]->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace tagmatch

#include "src/core/packed_output.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"

namespace tagmatch {
namespace {

TEST(PackedCodec, GroupGeometry) {
  // 20 bytes per group of 4 -> 5 bytes per pair amortized; a naive padded
  // struct costs 8 (the paper's 38% waste).
  EXPECT_EQ(PackedResultCodec::kGroupBytes, 20u);
  EXPECT_EQ(PackedResultCodec::bytes_for(0), 0u);
  EXPECT_EQ(PackedResultCodec::bytes_for(1), 20u);
  EXPECT_EQ(PackedResultCodec::bytes_for(4), 20u);
  EXPECT_EQ(PackedResultCodec::bytes_for(5), 40u);
  EXPECT_EQ(PackedResultCodec::bytes_for(8), 40u);
}

TEST(PackedCodec, SavesOverUnpacked) {
  // The headline claim of §3.3.1: near-100% utilization vs 62%.
  const size_t n = 1000;
  EXPECT_LT(PackedResultCodec::bytes_for(n), UnpackedResultCodec::bytes_for(n));
  EXPECT_NEAR(static_cast<double>(PackedResultCodec::bytes_for(n)) /
                  static_cast<double>(UnpackedResultCodec::bytes_for(n)),
              5.0 / 8.0, 0.01);
}

template <typename Codec>
void round_trip_test(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 1000;
  std::vector<ResultPair> pairs(n);
  for (auto& p : pairs) {
    p.query = static_cast<uint8_t>(rng.below(256));
    p.set_id = static_cast<uint32_t>(rng.next());
  }
  std::vector<std::byte> buf(Codec::bytes_for(n));
  for (size_t i = 0; i < n; ++i) {
    Codec::write(buf.data(), i, pairs[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    ResultPair r = Codec::read(buf.data(), i);
    EXPECT_EQ(r.query, pairs[i].query);
    EXPECT_EQ(r.set_id, pairs[i].set_id);
  }
}

TEST(PackedCodec, RoundTrip) { round_trip_test<PackedResultCodec>(31); }
TEST(UnpackedCodec, RoundTrip) { round_trip_test<UnpackedResultCodec>(32); }

TEST(PackedCodec, PartialFinalGroupReadable) {
  std::vector<std::byte> buf(PackedResultCodec::bytes_for(6));
  for (size_t i = 0; i < 6; ++i) {
    PackedResultCodec::write(buf.data(), i,
                             ResultPair{static_cast<uint8_t>(i), static_cast<uint32_t>(100 + i)});
  }
  for (size_t i = 0; i < 6; ++i) {
    ResultPair r = PackedResultCodec::read(buf.data(), i);
    EXPECT_EQ(r.query, i);
    EXPECT_EQ(r.set_id, 100 + i);
  }
}

TEST(PackedCodec, WritesAreIndependentOfOrder) {
  // GPU threads write entries out of order via the atomic counter; the codec
  // must not care.
  std::vector<std::byte> a(PackedResultCodec::bytes_for(8));
  std::vector<std::byte> b(PackedResultCodec::bytes_for(8));
  std::vector<ResultPair> pairs;
  for (uint8_t i = 0; i < 8; ++i) {
    pairs.push_back(ResultPair{i, uint32_t{1000} + i});
  }
  for (size_t i = 0; i < 8; ++i) {
    PackedResultCodec::write(a.data(), i, pairs[i]);
  }
  for (size_t i = 8; i-- > 0;) {
    PackedResultCodec::write(b.data(), i, pairs[i]);
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tagmatch

// Tests for the broker's TCP front end: wire-protocol parsing and full
// client/server round trips over localhost.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"

namespace tagmatch::net {
namespace {

using Tags = std::vector<std::string>;

// ------------------------------------------------------------------- wire

TEST(Wire, ParseTags) {
  auto tags = parse_tags("a,b,c");
  ASSERT_TRUE(tags.has_value());
  EXPECT_EQ(*tags, (Tags{"a", "b", "c"}));
  EXPECT_FALSE(parse_tags("a,,b").has_value());
  EXPECT_FALSE(parse_tags("").has_value());
  EXPECT_FALSE(parse_tags("a b").has_value());
  auto single = parse_tags("solo");
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->size(), 1u);
}

TEST(Wire, ParseRequests) {
  auto sub = parse_request("SUB sports,football");
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->kind, Request::Kind::kSub);
  EXPECT_EQ(sub->tags, (Tags{"sports", "football"}));

  auto unsub = parse_request("UNSUB 42");
  ASSERT_TRUE(unsub.has_value());
  EXPECT_EQ(unsub->kind, Request::Kind::kUnsub);
  EXPECT_EQ(unsub->subscription, 42u);

  auto pub = parse_request("PUB a,b hello world");
  ASSERT_TRUE(pub.has_value());
  EXPECT_EQ(pub->kind, Request::Kind::kPub);
  EXPECT_EQ(pub->tags, (Tags{"a", "b"}));
  EXPECT_EQ(pub->payload, "hello world");

  auto pub_empty = parse_request("PUB a,b");
  ASSERT_TRUE(pub_empty.has_value());
  EXPECT_EQ(pub_empty->payload, "");

  auto ping = parse_request("PING");
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->kind, Request::Kind::kPing);

  EXPECT_FALSE(parse_request("NOPE x").has_value());
  EXPECT_FALSE(parse_request("SUB").has_value());
  EXPECT_FALSE(parse_request("UNSUB notanumber").has_value());
  EXPECT_FALSE(parse_request("").has_value());
}

TEST(Wire, ParseStatsAndTraceRequests) {
  auto stats = parse_request("STATS");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->kind, Request::Kind::kStats);

  auto trace = parse_request("TRACE");
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->kind, Request::Kind::kTrace);
  EXPECT_EQ(trace->trace_limit, 0u);

  auto trace_n = parse_request("TRACE 128");
  ASSERT_TRUE(trace_n.has_value());
  EXPECT_EQ(trace_n->kind, Request::Kind::kTrace);
  EXPECT_EQ(trace_n->trace_limit, 128u);

  EXPECT_FALSE(parse_request("TRACE abc").has_value());
  EXPECT_FALSE(parse_request("STATS now").has_value());
}

TEST(Wire, ParseTraceFilters) {
  auto full = parse_request("TRACE 64 stage=kernel since=17");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->kind, Request::Kind::kTrace);
  EXPECT_EQ(full->trace_limit, 64u);
  EXPECT_EQ(full->trace_stage, "kernel");
  EXPECT_EQ(full->trace_since, 17u);

  auto stage_only = parse_request("TRACE stage=gather");
  ASSERT_TRUE(stage_only.has_value());
  EXPECT_EQ(stage_only->trace_limit, 0u);
  EXPECT_EQ(stage_only->trace_stage, "gather");
  EXPECT_EQ(stage_only->trace_since, 0u);

  auto since_only = parse_request("TRACE since=9");
  ASSERT_TRUE(since_only.has_value());
  EXPECT_EQ(since_only->trace_since, 9u);

  // Fail-closed grammar: unknown keys, unknown stage names, non-numeric
  // values, and a bare limit anywhere but first all reject.
  EXPECT_FALSE(parse_request("TRACE stage=bogus").has_value());
  EXPECT_FALSE(parse_request("TRACE since=abc").has_value());
  EXPECT_FALSE(parse_request("TRACE depth=3").has_value());
  EXPECT_FALSE(parse_request("TRACE stage=kernel 64").has_value());
}

TEST(Wire, TracexRoundTrip) {
  auto req = parse_request("TRACEX");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->kind, Request::Kind::kTracex);
  EXPECT_FALSE(parse_request("TRACEX now").has_value());

  auto frame = parse_server_frame(format_tracex(R"({"traceEvents":[]})"));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, ServerFrame::Kind::kTracex);
  EXPECT_EQ(frame->payload, R"({"traceEvents":[]})");
}

TEST(Wire, StatsAndTraceFramesRoundTrip) {
  auto stats = parse_server_frame(format_stats(R"({"counters":{"x":1}})"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->kind, ServerFrame::Kind::kStats);
  EXPECT_EQ(stats->payload, R"({"counters":{"x":1}})");

  auto trace = parse_server_frame(format_trace("[]"));
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->kind, ServerFrame::Kind::kTrace);
  EXPECT_EQ(trace->payload, "[]");
}

TEST(Wire, ServerFramesRoundTrip) {
  auto ok = parse_server_frame(format_ok(17));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->kind, ServerFrame::Kind::kOk);
  EXPECT_EQ(ok->id, 17u);

  auto err = parse_server_frame(format_err("bad input"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, ServerFrame::Kind::kErr);
  EXPECT_EQ(err->error, "bad input");

  auto msg = parse_server_frame(format_msg(Tags{"x", "y"}, "payload text"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, ServerFrame::Kind::kMsg);
  EXPECT_EQ(msg->tags, (Tags{"x", "y"}));
  EXPECT_EQ(msg->payload, "payload text");

  auto pong = parse_server_frame("PONG");
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->kind, ServerFrame::Kind::kPong);
}

// ----------------------------------------------------------------- end-to-end

broker::BrokerConfig server_broker_config() {
  broker::BrokerConfig c;
  c.engine.num_threads = 2;
  c.engine.num_gpus = 1;
  c.engine.streams_per_gpu = 2;
  c.engine.gpu_sms_per_device = 1;
  c.engine.gpu_memory_capacity = 128ull << 20;
  c.engine.gpu_costs.enforce = false;
  c.engine.batch_size = 8;
  c.engine.max_partition_size = 32;
  c.engine.batch_timeout = std::chrono::milliseconds(2);
  c.consolidate_interval = std::chrono::milliseconds(50);
  return c;
}

class NetEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<broker::Broker>(server_broker_config());
    server_ = std::make_unique<BrokerServer>(broker_.get(), 0);
    ASSERT_TRUE(server_->listening());
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<broker::Broker> broker_;
  std::unique_ptr<BrokerServer> server_;
};

TEST_F(NetEndToEnd, PingPong) {
  BrokerClient client;
  ASSERT_TRUE(client.connect(server_->port()));
  EXPECT_TRUE(client.ping());
  client.close();
}

TEST_F(NetEndToEnd, SubscribePublishReceive) {
  BrokerClient consumer, producer;
  ASSERT_TRUE(consumer.connect(server_->port()));
  ASSERT_TRUE(producer.connect(server_->port()));

  auto sub = consumer.subscribe(Tags{"alerts"});
  ASSERT_TRUE(sub.has_value());
  ASSERT_TRUE(producer.publish(Tags{"alerts", "disk"}, "disk almost full"));

  auto msg = consumer.receive(std::chrono::milliseconds(5000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "disk almost full");
  EXPECT_EQ(msg->tags, (Tags{"alerts", "disk"}));
  // The producer has no subscription: nothing delivered to it.
  EXPECT_FALSE(producer.receive(std::chrono::milliseconds(50)).has_value());
}

TEST_F(NetEndToEnd, UnsubscribeStopsDeliveries) {
  BrokerClient consumer, producer;
  ASSERT_TRUE(consumer.connect(server_->port()));
  ASSERT_TRUE(producer.connect(server_->port()));
  auto sub = consumer.subscribe(Tags{"t"});
  ASSERT_TRUE(sub.has_value());
  ASSERT_TRUE(producer.publish(Tags{"t", "u"}, "first"));
  ASSERT_TRUE(consumer.receive(std::chrono::milliseconds(5000)).has_value());
  ASSERT_TRUE(consumer.unsubscribe(*sub));
  ASSERT_TRUE(producer.publish(Tags{"t", "u"}, "second"));
  EXPECT_FALSE(consumer.receive(std::chrono::milliseconds(200)).has_value());
}

TEST_F(NetEndToEnd, MalformedCommandsYieldErrNotDisconnect) {
  BrokerClient client;
  ASSERT_TRUE(client.connect(server_->port()));
  // Drive the raw protocol through publish of invalid tags: the client-side
  // formatter would happily send them; the server must reject and stay up.
  EXPECT_FALSE(client.publish(Tags{"bad tag with spaces"}, "x"));
  EXPECT_TRUE(client.ping());  // Connection still alive.
}

TEST_F(NetEndToEnd, ManyClientsFanOut) {
  constexpr int kConsumers = 5;
  std::vector<std::unique_ptr<BrokerClient>> consumers;
  for (int i = 0; i < kConsumers; ++i) {
    auto c = std::make_unique<BrokerClient>();
    ASSERT_TRUE(c->connect(server_->port()));
    ASSERT_TRUE(c->subscribe(Tags{"broadcast"}).has_value());
    consumers.push_back(std::move(c));
  }
  BrokerClient producer;
  ASSERT_TRUE(producer.connect(server_->port()));
  ASSERT_TRUE(producer.publish(Tags{"broadcast", "all"}, "hello everyone"));
  for (auto& c : consumers) {
    auto msg = c->receive(std::chrono::milliseconds(5000));
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload, "hello everyone");
  }
  EXPECT_GE(server_->connections_served(), static_cast<uint64_t>(kConsumers + 1));
}

TEST(NetTracing, TraceFilterAndTracexVerbsEndToEnd) {
  auto config = server_broker_config();
  config.engine_shards = 2;  // gather spans only exist on the sharded path
  config.tracing = true;
  config.trace_head_sample_every = 1;  // retain every publish
  broker::Broker broker(config);
  BrokerServer server(&broker, 0);
  ASSERT_TRUE(server.listening());

  BrokerClient consumer, producer;
  ASSERT_TRUE(consumer.connect(server.port()));
  ASSERT_TRUE(producer.connect(server.port()));
  ASSERT_TRUE(consumer.subscribe(Tags{"alerts"}).has_value());
  ASSERT_TRUE(producer.publish(Tags{"alerts", "gpu"}, "hot"));
  ASSERT_TRUE(consumer.receive(std::chrono::milliseconds(5000)).has_value());

  // TRACE with a stage filter returns the envelope with only gather spans.
  auto filtered = producer.trace_json(/*limit=*/4, /*stage=*/"gather");
  ASSERT_TRUE(filtered.has_value());
  EXPECT_NE(filtered->find("\"spans\":["), std::string::npos);
  EXPECT_NE(filtered->find("\"dropped\":"), std::string::npos);
  EXPECT_NE(filtered->find("\"gather\""), std::string::npos);
  EXPECT_EQ(filtered->find("\"prefilter\""), std::string::npos);

  // A bad stage name is rejected server-side (ERR, not a disconnect).
  EXPECT_FALSE(producer.trace_json(0, "bogus").has_value());
  EXPECT_TRUE(producer.ping());

  // TRACEX serves the retained causal traces; retention happens when the
  // publish finishes, so poll briefly.
  std::string tracex;
  for (int i = 0; i < 200; ++i) {
    auto json = producer.tracex_json();
    ASSERT_TRUE(json.has_value());
    tracex = *json;
    if (tracex.find("\"ph\":\"X\"") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(tracex.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(tracex.find("\"ph\":\"X\""), std::string::npos) << tracex;
  EXPECT_NE(tracex.find("\"publish\""), std::string::npos);
}

TEST_F(NetEndToEnd, ClientDisconnectCleansUpSubscriber) {
  {
    BrokerClient ephemeral;
    ASSERT_TRUE(ephemeral.connect(server_->port()));
    ASSERT_TRUE(ephemeral.subscribe(Tags{"gone"}).has_value());
    ephemeral.close();
  }
  // Give the server a moment to reap the connection.
  for (int i = 0; i < 200 && broker_->stats().subscribers > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(broker_->stats().subscribers, 0u);
  // Publishing to the dead subscription must not crash or deliver.
  BrokerClient producer;
  ASSERT_TRUE(producer.connect(server_->port()));
  EXPECT_TRUE(producer.publish(Tags{"gone", "now"}, "into the void"));
}

// Pulls `"name":{"count":N` out of a STATS JSON payload; 0 when absent.
uint64_t histogram_count_in_json(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\":{\"count\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST_F(NetEndToEnd, StatsVerbReturnsStageHistograms) {
  BrokerClient consumer, producer;
  ASSERT_TRUE(consumer.connect(server_->port()));
  ASSERT_TRUE(producer.connect(server_->port()));
  ASSERT_TRUE(consumer.subscribe(Tags{"alerts"}).has_value());
  // Fold the subscription into the partitioned index so the publish below
  // rides the full GPU pipeline (staged-index scans bypass the kernel).
  broker_->flush();
  ASSERT_TRUE(producer.publish(Tags{"alerts", "disk"}, "x"));
  ASSERT_TRUE(consumer.receive(std::chrono::milliseconds(5000)).has_value());

  auto stats = producer.stats_json();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->find('\n'), std::string::npos);
  // The acceptance surface: per-stage latency histograms covering the
  // pre-filter, kernel, copy-back and consolidate stages, with samples.
  EXPECT_GT(histogram_count_in_json(*stats, "stage.prefilter_ns"), 0u);
  EXPECT_GT(histogram_count_in_json(*stats, "stage.kernel_ns"), 0u);
  EXPECT_GT(histogram_count_in_json(*stats, "stage.d2h_ns"), 0u);
  EXPECT_GT(histogram_count_in_json(*stats, "stage.consolidate_ns"), 0u);
  EXPECT_GT(histogram_count_in_json(*stats, "query.latency_ns"), 0u);
  EXPECT_GT(histogram_count_in_json(*stats, "broker.publish_latency_ns"), 0u);
  // Broker counters ride the same snapshot.
  EXPECT_NE(stats->find("\"broker.published\":1"), std::string::npos);

  // TRACE serves the envelope form: dropped/total framing around the spans.
  auto trace = producer.trace_json(64);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->front(), '{');
  EXPECT_NE(trace->find("\"dropped\":"), std::string::npos);
  EXPECT_NE(trace->find("\"total\":"), std::string::npos);
  EXPECT_NE(trace->find("\"spans\":["), std::string::npos);
  EXPECT_NE(trace->find("\"stage\":\"kernel\""), std::string::npos);
}

TEST_F(NetEndToEnd, ServerStopIsCleanWhileClientsConnected) {
  BrokerClient client;
  ASSERT_TRUE(client.connect(server_->port()));
  ASSERT_TRUE(client.subscribe(Tags{"x"}).has_value());
  server_->stop();
  // Further commands fail but nothing hangs or crashes.
  EXPECT_FALSE(client.ping());
}

// ------------------------------------------------- trace propagation (wire)

TEST(Wire, TraceparentRoundTrip) {
  const std::string tp = format_traceparent(0xdeadbeefcafe1234ull, 0x42ull, true);
  // W3C shape: 00-<32 hex>-<16 hex>-<2 hex flags>.
  ASSERT_EQ(tp.size(), 55u);
  EXPECT_EQ(tp.substr(0, 3), "00-");
  auto parsed = parse_traceparent(tp);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(parsed->parent_span_id, 0x42ull);
  EXPECT_TRUE(parsed->sampled);
  EXPECT_FALSE(parse_traceparent(format_traceparent(1, 2, false))->sampled);

  // Malformed forms reject: bad length, bad version, zero ids, non-hex.
  EXPECT_FALSE(parse_traceparent("").has_value());
  EXPECT_FALSE(parse_traceparent("01-" + tp.substr(3)).has_value());
  EXPECT_FALSE(parse_traceparent(tp.substr(0, 54)).has_value());
  EXPECT_FALSE(
      parse_traceparent("00-00000000000000000000000000000000-0000000000000001-01")
          .has_value());
  EXPECT_FALSE(
      parse_traceparent("00-00000000000000000000000000000001-0000000000000000-01")
          .has_value());
  EXPECT_FALSE(
      parse_traceparent("00-0000000000000000000000000000000g-0000000000000001-01")
          .has_value());
}

TEST(Wire, PubWithTraceparentParses) {
  const std::string tp = format_traceparent(0xabcull, 0x7ull, true);
  auto pub = parse_request("PUB a,b traceparent=" + tp + " hello world");
  ASSERT_TRUE(pub.has_value());
  EXPECT_EQ(pub->kind, Request::Kind::kPub);
  EXPECT_EQ(pub->tags, (Tags{"a", "b"}));
  EXPECT_EQ(pub->payload, "hello world");
  EXPECT_EQ(pub->pub_trace_id, 0xabcull);
  EXPECT_EQ(pub->pub_parent_span_id, 0x7ull);
  EXPECT_TRUE(pub->pub_sampled);

  // Without the token the ids stay zero (untraced) and the payload is whole.
  auto plain = parse_request("PUB a,b hello world");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->pub_trace_id, 0u);
  EXPECT_EQ(plain->payload, "hello world");

  // A malformed traceparent token rejects the request (fail-closed), it does
  // not fall through to being payload.
  EXPECT_FALSE(parse_request("PUB a,b traceparent=garbage x").has_value());
}

TEST(Wire, MsgEchoesTraceparent) {
  const std::string line = format_msg(Tags{"a"}, "payload", 0x1234ull);
  EXPECT_NE(line.find("traceparent="), std::string::npos);
  auto frame = parse_server_frame(line.substr(0, line.size() - 1));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, ServerFrame::Kind::kMsg);
  EXPECT_EQ(frame->trace_id, 0x1234ull);
  EXPECT_EQ(frame->payload, "payload");

  // Untraced messages stay bare.
  const std::string bare = format_msg(Tags{"a"}, "payload", 0);
  EXPECT_EQ(bare.find("traceparent="), std::string::npos);
  auto bare_frame = parse_server_frame(bare.substr(0, bare.size() - 1));
  ASSERT_TRUE(bare_frame.has_value());
  EXPECT_EQ(bare_frame->trace_id, 0u);
}

TEST(Wire, TsqAndTracesRequestsParse) {
  auto tsq = parse_request("TSQ stage.*_ns last=16");
  ASSERT_TRUE(tsq.has_value());
  EXPECT_EQ(tsq->kind, Request::Kind::kTsq);
  EXPECT_EQ(tsq->tsq_glob, "stage.*_ns");
  EXPECT_EQ(tsq->tsq_last, 16u);

  auto all = parse_request("TSQ *");
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->tsq_glob, "*");
  EXPECT_EQ(all->tsq_last, 0u);

  EXPECT_FALSE(parse_request("TSQ").has_value());            // Glob mandatory.
  EXPECT_FALSE(parse_request("TSQ * bogus=1").has_value());  // Unknown kv.

  auto traces = parse_request("TRACES");
  ASSERT_TRUE(traces.has_value());
  EXPECT_EQ(traces->kind, Request::Kind::kTraces);

  // Frame round trips.
  auto tsq_frame = parse_server_frame("TSQ {\"capacity\":4}");
  ASSERT_TRUE(tsq_frame.has_value());
  EXPECT_EQ(tsq_frame->kind, ServerFrame::Kind::kTsq);
  auto traces_frame = parse_server_frame("TRACES {\"flushed\":0}");
  ASSERT_TRUE(traces_frame.has_value());
  EXPECT_EQ(traces_frame->kind, ServerFrame::Kind::kTraces);
}

// -------------------------------------------- trace propagation (end-to-end)

TEST(NetTelemetry, ClientTraceIdRidesPipelineAndEchoesOnDelivery) {
  auto config = server_broker_config();
  config.tracing = true;
  broker::Broker broker(config);
  BrokerServer server(&broker, 0);
  ASSERT_TRUE(server.listening());

  BrokerClient consumer, producer;
  ASSERT_TRUE(consumer.connect(server.port()));
  ASSERT_TRUE(producer.connect(server.port()));
  ASSERT_TRUE(consumer.subscribe(Tags{"alerts"}).has_value());
  broker.flush();

  const uint64_t trace_id = 0x1122334455667788ull;
  ASSERT_TRUE(producer.publish_traced(Tags{"alerts"}, "traced", trace_id, 0x99ull));
  auto msg = consumer.receive(std::chrono::milliseconds(5000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "traced");
  // The client-supplied id is threaded through the broker's TraceContext and
  // echoed on the delivery frame.
  EXPECT_EQ(msg->trace_id, trace_id);

  // sampled=true forces retention: the trace shows up in TRACEX under the
  // external id (rendered in decimal by the Chrome-JSON exporter).
  auto tracex = producer.tracex_json();
  ASSERT_TRUE(tracex.has_value());
  EXPECT_NE(tracex->find(std::to_string(trace_id)), std::string::npos);

  // Zero ids are invalid on the wire; the client rejects them locally.
  EXPECT_FALSE(producer.publish_traced(Tags{"alerts"}, "x", 0, 1));
  EXPECT_FALSE(producer.publish_traced(Tags{"alerts"}, "x", 1, 0));

  consumer.close();
  producer.close();
  server.stop();
}

// ------------------------------------------------ telemetry verbs end-to-end

TEST(NetTelemetry, TsqAnswersErrWithoutTelemetry) {
  auto config = server_broker_config();
  broker::Broker broker(config);
  BrokerServer server(&broker, 0);  // No telemetry layer.
  ASSERT_TRUE(server.listening());
  BrokerClient client;
  ASSERT_TRUE(client.connect(server.port()));
  EXPECT_FALSE(client.tsq_json("*").has_value());
  EXPECT_TRUE(client.ping());  // The connection survives the ERR.
  client.close();
  server.stop();
}

TEST(NetTelemetry, TsqAndTracesVerbsEndToEnd) {
  auto config = server_broker_config();
  config.tracing = true;
  broker::Broker broker(config);

  telemetry::TelemetryConfig tconfig;
  tconfig.interval = std::chrono::milliseconds(0);  // Ticks driven manually.
  tconfig.snapshot_fn = [&broker] { return broker.metrics_snapshot(); };
  tconfig.trace_fn = [&broker] { return broker.trace_snapshot(); };
  tconfig.trace_dropped_fn = [&broker] { return broker.trace_dropped(); };
  telemetry::Telemetry telemetry(std::move(tconfig));

  BrokerServer server(&broker, 0, &telemetry);
  ASSERT_TRUE(server.listening());
  BrokerClient consumer, producer;
  ASSERT_TRUE(consumer.connect(server.port()));
  ASSERT_TRUE(producer.connect(server.port()));
  ASSERT_TRUE(consumer.subscribe(Tags{"alerts"}).has_value());
  broker.flush();
  ASSERT_TRUE(producer.publish(Tags{"alerts"}, "x"));
  ASSERT_TRUE(consumer.receive(std::chrono::milliseconds(5000)).has_value());

  // Two ticks so the ring has a windowed sample of the publish.
  telemetry.tick(1'000'000'000);
  telemetry.tick(2'000'000'000);

  auto tsq = producer.tsq_json("broker.*");
  ASSERT_TRUE(tsq.has_value());
  EXPECT_EQ(tsq->front(), '{');
  EXPECT_NE(tsq->find("broker.published"), std::string::npos);
  EXPECT_EQ(tsq->find("stage."), std::string::npos);  // Glob filters.

  // STATS folds the telemetry.* registry in.
  auto stats = producer.stats_json();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("telemetry.samples"), std::string::npos);

  // TRACES pages incrementally per connection: a second call with no new
  // traffic flushes nothing.
  auto first = producer.traces_json();
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->find("\"flushed\":"), std::string::npos);
  EXPECT_NE(first->find("\"ph\":\"X\""), std::string::npos);
  auto second = producer.traces_json();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("\"flushed\":0"), std::string::npos);

  consumer.close();
  producer.close();
  server.stop();
}

}  // namespace
}  // namespace tagmatch::net

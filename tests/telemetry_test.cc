// Tests for the continuous-telemetry layer (src/telemetry): the rolling
// time-series store (fake-clock ingest, wrap-around, counter reset, windowed
// bucket-delta percentiles), the SLO burn-rate watchdog (spec grammar,
// trip/holdoff/re-arm), the incremental span streamer (snapshot-diff dedupe,
// drop accounting, the late-parent case), the stream file format, the
// orchestrator's tick loop (exactly-one retrospective dump, sampling boost),
// a chaos-tier device-loss drill, and the contract that every telemetry.*
// metric is documented in docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/tagmatch.h"
#include "src/inject/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/telemetry/slo_watchdog.h"
#include "src/telemetry/stream_export.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeseries.h"

namespace tagmatch::telemetry {
namespace {

constexpr int64_t kSec = 1'000'000'000;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ------------------------------------------------------------------- glob

TEST(Glob, MatchesStarRuns) {
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("stage.*_ns", "stage.kernel_ns"));
  EXPECT_TRUE(glob_match("device.health.*", "device.health.0"));
  EXPECT_TRUE(glob_match("telemetry.alert.*", "telemetry.alert.p99"));
  EXPECT_TRUE(glob_match("a*b*c", "aXbYc"));
  EXPECT_TRUE(glob_match("a*b*c", "abc"));
  EXPECT_FALSE(glob_match("stage.*_ns", "query.latency_ns"));
  EXPECT_FALSE(glob_match("device.health.*", "device.health"));
  EXPECT_FALSE(glob_match("abc", "abd"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
}

// ------------------------------------------------------------ time series

TEST(TimeSeries, CounterWindowsCarryDeltaAndRate) {
  obs::Registry reg;
  TimeSeriesStore store(8);
  reg.counter("c")->add(100);
  store.ingest(1 * kSec, reg.snapshot());  // Baseline window (boot-to-now).
  reg.counter("c")->add(50);
  store.ingest(2 * kSec, reg.snapshot());

  auto samples = store.query("c");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].window_ns, 0);  // First window has no prior tick.
  EXPECT_EQ(samples[0].metrics.at("c").delta, 100u);
  EXPECT_EQ(samples[1].window_ns, 1 * kSec);
  EXPECT_EQ(samples[1].metrics.at("c").delta, 50u);
  EXPECT_DOUBLE_EQ(samples[1].metrics.at("c").rate, 50.0);
}

TEST(TimeSeries, RingWrapsAtCapacity) {
  obs::Registry reg;
  TimeSeriesStore store(4);
  for (int i = 0; i < 10; ++i) {
    reg.counter("c")->add(1);
    store.ingest((i + 1) * kSec, reg.snapshot());
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.total_ingested(), 10u);
  auto samples = store.query("c");
  ASSERT_EQ(samples.size(), 4u);
  // Oldest retained is tick 7 (ticks 1..6 were evicted), newest is tick 10.
  EXPECT_EQ(samples.front().t_ns, 7 * kSec);
  EXPECT_EQ(samples.back().t_ns, 10 * kSec);
  // last_n trims from the old end.
  EXPECT_EQ(store.query("c", 2).size(), 2u);
  EXPECT_EQ(store.query("c", 2).front().t_ns, 9 * kSec);
}

TEST(TimeSeries, CounterResetRestartsWindow) {
  obs::Registry a;
  TimeSeriesStore store(8);
  a.counter("c")->add(1000);
  store.ingest(1 * kSec, a.snapshot());

  // Engine reload: a fresh registry whose counter restarts from zero.
  obs::Registry b;
  b.counter("c")->add(30);
  store.ingest(2 * kSec, b.snapshot());

  auto samples = store.query("c");
  ASSERT_EQ(samples.size(), 2u);
  // Not a (wrapping) negative delta: the window restarts at the new value.
  EXPECT_EQ(samples[1].metrics.at("c").delta, 30u);
}

TEST(TimeSeries, GaugeWindowsKeepLatestReading) {
  obs::Registry reg;
  TimeSeriesStore store(8);
  reg.gauge("g")->set(7);
  store.ingest(1 * kSec, reg.snapshot());
  reg.gauge("g")->set(-3);
  store.ingest(2 * kSec, reg.snapshot());
  auto samples = store.query("g");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].metrics.at("g").value, 7);
  EXPECT_EQ(samples[1].metrics.at("g").value, -3);
}

// The point of bucket-delta percentiles: a latency spike confined to one
// window is invisible in the lifetime percentile but dominates the windowed
// one, and vice versa.
TEST(TimeSeries, WindowedPercentilesReflectOnlyTheWindow) {
  obs::Registry reg;
  TimeSeriesStore store(8);
  // Window 1: a thousand 1 ms samples.
  for (int i = 0; i < 1000; ++i) {
    reg.histogram("h")->record(1'000'000);
  }
  store.ingest(1 * kSec, reg.snapshot());
  // Window 2: a hundred samples in 1..100 — tiny against the lifetime data.
  for (uint64_t v = 1; v <= 100; ++v) {
    reg.histogram("h")->record(v);
  }
  store.ingest(2 * kSec, reg.snapshot());

  auto samples = store.query("h");
  ASSERT_EQ(samples.size(), 2u);
  const auto& w2 = samples[1].metrics.at("h");
  ASSERT_EQ(w2.kind, MetricWindow::Kind::kHistogram);
  EXPECT_EQ(w2.hist.count, 100u);
  // Oracle: the sorted window-2 samples put p99 at 100; power-of-two buckets
  // bound the interpolation error by one bucket (128).
  EXPECT_LE(w2.hist.percentile(99), 128.0);
  EXPECT_GE(w2.hist.percentile(99), 64.0);
  EXPECT_LE(w2.hist.percentile(50), 64.0);
  // The lifetime percentile at the same instant is still the 1 ms mass.
  EXPECT_GE(reg.histogram("h")->snapshot().percentile(99), 500'000.0);
}

TEST(TimeSeries, AggregateMergesWindows) {
  obs::Registry reg;
  TimeSeriesStore store(8);
  reg.counter("c")->add(10);
  reg.histogram("h")->record(8);
  store.ingest(1 * kSec, reg.snapshot());
  reg.counter("c")->add(20);
  reg.histogram("h")->record(1024);
  store.ingest(2 * kSec, reg.snapshot());
  reg.counter("c")->add(30);
  reg.histogram("h")->record(1024);
  store.ingest(3 * kSec, reg.snapshot());

  // The 2 s horizon covers ticks 2 and 3 only.
  auto c = store.aggregate("c", 2 * kSec, 3 * kSec);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->delta, 50u);
  EXPECT_DOUBLE_EQ(c->rate, 25.0);

  auto h = store.aggregate("h", 2 * kSec, 3 * kSec);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->hist.count, 2u);  // The window-1 sample (8) is outside.
  EXPECT_GE(h->hist.percentile(50), 512.0);

  EXPECT_FALSE(store.aggregate("missing", 2 * kSec, 3 * kSec).has_value());
}

TEST(TimeSeries, ToJsonRendersAllKinds) {
  obs::Registry reg;
  TimeSeriesStore store(8);
  reg.counter("c")->add(5);
  reg.gauge("g")->set(9);
  reg.histogram("h")->record(100);
  store.ingest(1 * kSec, reg.snapshot());
  const std::string json = store.to_json("*");
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // One wire frame.
  // The glob filters.
  EXPECT_EQ(store.to_json("nope.*").find("\"type\""), std::string::npos);
}

// ---------------------------------------------------------------- watchdog

TEST(SloRules, ParseRoundTripsAndFailsClosed) {
  std::string error;
  auto rules = parse_slo_rules(
      "query.latency_ns:threshold=5e6,p=99,fast=5s,slow=30s,budget=2,holdoff=10s,name=lat;"
      "engine.queries_processed:threshold=100",
      &error);
  ASSERT_TRUE(rules.has_value()) << error;
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].name, "lat");
  EXPECT_EQ((*rules)[0].metric, "query.latency_ns");
  EXPECT_DOUBLE_EQ((*rules)[0].threshold, 5e6);
  EXPECT_DOUBLE_EQ((*rules)[0].budget, 2.0);
  EXPECT_EQ((*rules)[0].fast_ns, 5 * kSec);
  EXPECT_EQ((*rules)[0].slow_ns, 30 * kSec);
  EXPECT_EQ((*rules)[0].holdoff_ns, 10 * kSec);
  EXPECT_EQ((*rules)[1].name, "engine.queries_processed");  // Default name.

  // Canonical spec round-trips through the parser.
  auto again = parse_slo_rules((*rules)[0].to_spec() + ";" + (*rules)[1].to_spec());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ((*again)[0].to_spec(), (*rules)[0].to_spec());

  // Fail-closed: each violation rejects the whole spec.
  EXPECT_FALSE(parse_slo_rules("m:budget=2", &error).has_value());  // No threshold.
  EXPECT_FALSE(parse_slo_rules("m:threshold=1,bogus=2").has_value());
  EXPECT_FALSE(parse_slo_rules("m:threshold=1,fast=1h").has_value());  // Bad unit.
  EXPECT_FALSE(parse_slo_rules("m:threshold=1,fast=60s,slow=10s").has_value());
  EXPECT_FALSE(parse_slo_rules("threshold=1").has_value());  // No metric.
  EXPECT_TRUE(parse_slo_rules("").has_value());
  EXPECT_TRUE(parse_slo_rules("")->empty());
}

TEST(SloWatchdog, TripsHoldsOffAndRearms) {
  obs::Registry reg;
  TimeSeriesStore store(64);
  SloRule rule;
  rule.name = "r";
  rule.metric = "c";
  rule.threshold = 10;  // Counter rate > 10/s burns.
  rule.fast_ns = 2 * kSec;
  rule.slow_ns = 4 * kSec;
  rule.holdoff_ns = 3 * kSec;
  SloWatchdog dog({rule});

  auto tick = [&](int64_t t, uint64_t add) {
    reg.counter("c")->add(add);
    store.ingest(t, reg.snapshot());
    return dog.evaluate(t, store);
  };

  // Healthy traffic: 5/s — never trips.
  int64_t t = 0;
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(tick(t += kSec, 5).empty());
  }
  EXPECT_FALSE(dog.any_tripped());

  // Burn at 100/s. The slow (4 s) window still averages the healthy ticks
  // down at first; both windows exceed after enough hot ticks.
  std::vector<size_t> tripped;
  for (int i = 0; i < 4 && tripped.empty(); ++i) {
    tripped = tick(t += kSec, 100);
  }
  ASSERT_EQ(tripped.size(), 1u);
  EXPECT_EQ(tripped[0], 0u);
  EXPECT_TRUE(dog.any_tripped());
  EXPECT_EQ(dog.state(0).trips, 1u);

  // Still burning through the holdoff: no re-trip.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(tick(t += kSec, 100).empty());
  }
  EXPECT_TRUE(dog.any_tripped());
  EXPECT_EQ(dog.state(0).trips, 1u);

  // Recovery: rate back to 0. Holdoff has long passed, so the rule re-arms
  // once the fast window drains...
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(tick(t += kSec, 0).empty());
  }
  EXPECT_FALSE(dog.any_tripped());

  // ...and a second burn trips a second time.
  tripped.clear();
  for (int i = 0; i < 6 && tripped.empty(); ++i) {
    tripped = tick(t += kSec, 100);
  }
  ASSERT_EQ(tripped.size(), 1u);
  EXPECT_EQ(dog.state(0).trips, 2u);
}

// ---------------------------------------------------------------- streaming

obs::Span make_span(uint64_t span_id, obs::Stage stage = obs::Stage::kEnqueue) {
  obs::Span s;
  s.id = span_id;
  s.span_id = span_id;
  s.stage = stage;
  s.start_ns = static_cast<int64_t>(span_id) * 10;
  s.end_ns = s.start_ns + 5;
  return s;
}

TEST(SpanStreamer, FlushesOnlyNewSpans) {
  SpanStreamer streamer;
  std::vector<obs::Span> ring = {make_span(1), make_span(2)};
  auto first = streamer.flush(ring, 0);
  EXPECT_EQ(first.spans.size(), 2u);
  EXPECT_EQ(first.dropped, 0u);

  auto again = streamer.flush(ring, 0);  // Nothing retired since.
  EXPECT_TRUE(again.spans.empty());
  EXPECT_EQ(again.dropped, 0u);

  ring.push_back(make_span(3));
  auto incr = streamer.flush(ring, 0);
  ASSERT_EQ(incr.spans.size(), 1u);
  EXPECT_EQ(incr.spans[0].span_id, 3u);
  EXPECT_EQ(streamer.flushed_total(), 3u);
}

// The case a span-id watermark would lose: a parent recorded after its
// children with a smaller pre-allocated id (PipelineObs::record_stage).
TEST(SpanStreamer, CatchesLateParentWithSmallerId) {
  SpanStreamer streamer;
  std::vector<obs::Span> ring = {make_span(5), make_span(6)};
  streamer.flush(ring, 0);
  ring.push_back(make_span(2, obs::Stage::kPreFilter));  // Late parent, id 2 < 6.
  auto flush = streamer.flush(ring, 0);
  ASSERT_EQ(flush.spans.size(), 1u);
  EXPECT_EQ(flush.spans[0].span_id, 2u);
}

TEST(SpanStreamer, CountsWrappedOutSpansAsDrops) {
  SpanStreamer streamer;
  std::vector<obs::Span> ring = {make_span(1), make_span(2)};
  streamer.flush(ring, /*ring_dropped=*/0);
  // Between flushes the ring recorded spans 3..12 and overwrote 1..10:
  // 10 new recordings, only 11 and 12 still present.
  std::vector<obs::Span> later = {make_span(11), make_span(12)};
  auto flush = streamer.flush(later, /*ring_dropped=*/10);
  EXPECT_EQ(flush.spans.size(), 2u);
  EXPECT_EQ(flush.dropped, 8u);  // 10 recorded - 2 exported.
  EXPECT_EQ(streamer.dropped_total(), 8u);
}

TEST(StreamFileWriter, WritesLoadableArrayAndBoundsFlushes) {
  const std::string path = testing::TempDir() + "stream_writer_test.json";
  {
    StreamFileWriter writer(/*max_events_per_flush=*/4);
    ASSERT_TRUE(writer.open(path));
    writer.append({make_span(1), make_span(2)});
    // Oversized flush: keeps the newest 4, counts the overflow as drops.
    writer.append({make_span(3), make_span(4), make_span(5), make_span(6),
                   make_span(7), make_span(8)});
    EXPECT_EQ(writer.events_written(), 6u);
    EXPECT_EQ(writer.events_dropped(), 2u);
    writer.close();
  }
  const std::string text = read_file(path);
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"span_id\":8"), std::string::npos);
  EXPECT_EQ(text.find("\"span_id\":3"), std::string::npos);  // Dropped head.
  EXPECT_NE(text.rfind(']'), std::string::npos);  // Terminated on close.
  std::remove(path.c_str());
}

// -------------------------------------------------------------- orchestrator

// Fake-clock harness: a Telemetry whose hooks feed a registry and span ring
// the test mutates; tick() is driven manually, start() never runs.
struct FakeHost {
  obs::Registry registry;
  std::vector<obs::Span> ring;
  uint64_t ring_dropped = 0;
  int boost_flips = 0;
  bool boost = false;

  TelemetryConfig config(const std::string& rules_spec) {
    TelemetryConfig c;
    c.interval = std::chrono::milliseconds(0);  // Thread off; ticks are manual.
    c.ring_capacity = 32;
    if (!rules_spec.empty()) {
      auto rules = parse_slo_rules(rules_spec);
      EXPECT_TRUE(rules.has_value());
      c.rules = *rules;
    }
    c.snapshot_fn = [this] { return registry.snapshot(); };
    c.trace_fn = [this] { return ring; };
    c.trace_dropped_fn = [this] { return ring_dropped; };
    c.sampling_boost_fn = [this](bool on) {
      ++boost_flips;
      boost = on;
    };
    return c;
  }
};

TEST(Telemetry, TripEmitsExactlyOneDumpAndBoostsSampling) {
  FakeHost host;
  auto config = host.config("c:threshold=10,fast=2s,slow=4s,holdoff=3s,name=burn");
  config.telemetry_dir = testing::TempDir();
  Telemetry tel(std::move(config));

  host.ring.push_back(make_span(1, obs::Stage::kKernel));
  int64_t t = 0;
  for (int i = 0; i < 6; ++i) {
    host.registry.counter("c")->add(5);  // Healthy.
    tel.tick(t += kSec);
  }
  EXPECT_EQ(tel.retro_dumps(), 0u);
  EXPECT_FALSE(host.boost);

  for (int i = 0; i < 10; ++i) {
    host.registry.counter("c")->add(100);  // Burning.
    tel.tick(t += kSec);
  }
  // One breach, one dump, boost up — held through the burn, no re-trips.
  EXPECT_EQ(tel.retro_dumps(), 1u);
  EXPECT_TRUE(host.boost);
  EXPECT_EQ(host.boost_flips, 1);
  EXPECT_EQ(tel.watchdog().state(0).trips, 1u);

  // The dump is a self-contained Perfetto bundle: trace events plus the
  // tripped rule and time-series history under the "telemetry" key.
  const std::string bundle = read_file(tel.last_dump_path());
  EXPECT_NE(bundle.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(bundle.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(bundle.find("\"name\":\"burn\""), std::string::npos);
  EXPECT_NE(bundle.find("\"name\":\"kernel\""), std::string::npos);
  EXPECT_NE(bundle.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(bundle.find("\"device_health\""), std::string::npos);
  std::remove(tel.last_dump_path().c_str());

  // Recovery drops the boost exactly once.
  for (int i = 0; i < 8; ++i) {
    tel.tick(t += kSec);  // Counter flat: rate 0.
  }
  EXPECT_FALSE(host.boost);
  EXPECT_EQ(host.boost_flips, 2);
  EXPECT_EQ(tel.retro_dumps(), 1u);

  // telemetry.* self-metrics surface the story for STATS.
  auto snap = tel.metrics_snapshot();
  EXPECT_EQ(snap.counters.at("telemetry.rule_trips"), 1u);
  EXPECT_EQ(snap.counters.at("telemetry.retro_dumps"), 1u);
  EXPECT_EQ(snap.gauges.at("telemetry.alert.burn"), 0);  // Re-armed.
  EXPECT_GT(snap.counters.at("telemetry.samples"), 0u);
}

TEST(Telemetry, StreamsRetiredSpansWithDropAccounting) {
  const std::string path = testing::TempDir() + "telemetry_stream_test.json";
  FakeHost host;
  auto config = host.config("");
  config.stream_path = path;
  {
    Telemetry tel(std::move(config));
    host.ring = {make_span(1), make_span(2)};
    tel.tick(1 * kSec);
    // Ring wrapped: 10 more recorded (ids 3..12), only two survive.
    host.ring = {make_span(11), make_span(12)};
    host.ring_dropped = 10;
    tel.tick(2 * kSec);
    EXPECT_EQ(tel.stream_flushed(), 4u);
    EXPECT_EQ(tel.stream_dropped(), 8u);
  }  // Destructor closes the stream file.
  const std::string text = read_file(path);
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"span_id\":12"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Telemetry, TsqJsonFiltersByGlobAndLastN) {
  FakeHost host;
  Telemetry tel(host.config(""));
  for (int i = 0; i < 5; ++i) {
    host.registry.counter("a.one")->add(1);
    host.registry.counter("b.two")->add(2);
    tel.tick((i + 1) * kSec);
  }
  const std::string all = tel.tsq_json("*");
  EXPECT_NE(all.find("a.one"), std::string::npos);
  EXPECT_NE(all.find("b.two"), std::string::npos);
  EXPECT_NE(all.find("telemetry.rss_bytes"), std::string::npos);
  const std::string only_a = tel.tsq_json("a.*", 2);
  EXPECT_NE(only_a.find("a.one"), std::string::npos);
  EXPECT_EQ(only_a.find("b.two"), std::string::npos);
}

// ------------------------------------------------------------- chaos drill

// Device loss under telemetry: the injected fault must trip the watchdog
// exactly once and the retrospective bundle must contain the kFault marker
// span — the "what broke and what was the engine doing" acceptance.
TEST(TelemetryChaos, DeviceLossEmitsOneDumpContainingTheFaultSpan) {
  TagMatchConfig config;
  config.num_threads = 2;
  config.num_gpus = 2;
  config.streams_per_gpu = 2;
  config.gpu_sms_per_device = 1;
  config.gpu_costs.enforce = false;
  config.batch_size = 8;
  config.max_partition_size = 64;
  config.quarantine_period = std::chrono::milliseconds(5);
  auto plan = inject::FaultPlan::parse("devloss:dev=0,after=20");
  ASSERT_TRUE(plan.has_value());
  config.fault_injector = std::make_shared<inject::FaultInjector>(*plan);
  TagMatch tm(config);
  for (uint32_t i = 0; i < 256; ++i) {
    tm.add_set(std::vector<std::string>{"t" + std::to_string(i % 16),
                                        "u" + std::to_string(i % 7)},
               i);
  }
  tm.consolidate();

  TelemetryConfig tconfig;
  tconfig.interval = std::chrono::milliseconds(0);
  auto rules = parse_slo_rules(
      "gpusim.faults_injected:threshold=0.001,fast=2s,slow=2s,holdoff=60s,name=devloss");
  ASSERT_TRUE(rules.has_value());
  tconfig.rules = *rules;
  tconfig.telemetry_dir = testing::TempDir();
  tconfig.snapshot_fn = [&tm] { return tm.metrics_snapshot(); };
  tconfig.trace_fn = [&tm] { return tm.trace_snapshot(); };
  tconfig.trace_dropped_fn = [&tm] { return tm.trace_dropped(); };
  Telemetry tel(std::move(tconfig));

  int64_t t = 0;
  tel.tick(t += kSec);  // Baseline before the fault.
  for (int i = 0; i < 40; ++i) {
    tm.match(std::vector<std::string>{"t" + std::to_string(i % 16)});
  }
  ASSERT_GT(config.fault_injector->faults_fired(), 0u);
  // Drive ticks until the rule's windows cover the fault. The holdoff is
  // longer than the test, so a second dump would be a bug.
  for (int i = 0; i < 4; ++i) {
    tel.tick(t += kSec);
  }
  EXPECT_EQ(tel.retro_dumps(), 1u);
  const std::string bundle = read_file(tel.last_dump_path());
  EXPECT_NE(bundle.find("\"name\":\"fault\""), std::string::npos)
      << "retrospective bundle is missing the kFault marker span";
  EXPECT_NE(bundle.find("\"name\":\"devloss\""), std::string::npos);
  std::remove(tel.last_dump_path().c_str());
}

// ----------------------------------------------------------------- doc diff

// Every telemetry.* metric the layer registers must be documented, same
// contract as Obs.EveryRegisteredMetricIsDocumented for the engine metrics.
TEST(TelemetryDocs, EveryTelemetryMetricIsDocumented) {
  FakeHost host;
  auto config = host.config("c:threshold=1,name=myrule");
  Telemetry tel(std::move(config));
  tel.tick(1 * kSec);

  std::set<std::string> names;
  auto snap = tel.metrics_snapshot();
  for (const auto& [name, v] : snap.counters) names.insert(name);
  for (const auto& [name, v] : snap.gauges) names.insert(name);
  for (const auto& [name, v] : snap.histograms) names.insert(name);
  ASSERT_GE(names.size(), 6u);

  const std::string text =
      read_file(std::string(TAGMATCH_SOURCE_DIR) + "/docs/OBSERVABILITY.md");
  ASSERT_FALSE(text.empty()) << "docs/OBSERVABILITY.md missing";
  for (std::string name : names) {
    // Per-rule alert gauges are documented as the telemetry.alert.<rule> row.
    if (name.rfind("telemetry.alert.", 0) == 0) {
      name = "telemetry.alert.<rule>";
    }
    EXPECT_NE(text.find("`" + name + "`"), std::string::npos)
        << "metric `" << name << "` is registered but not documented in "
        << "docs/OBSERVABILITY.md";
  }
}

}  // namespace
}  // namespace tagmatch::telemetry

// Quickstart: the TagMatch public API in a dozen lines.
//
// Build a small database of tag sets with associated keys, consolidate, and
// run match / match-unique queries.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/tagmatch.h"

int main() {
  using tagmatch::TagMatch;

  // A small engine: 1 simulated GPU, a couple of worker threads.
  tagmatch::TagMatchConfig config;
  config.num_gpus = 1;
  config.streams_per_gpu = 2;
  config.num_threads = 2;
  config.gpu_memory_capacity = 256ull << 20;
  TagMatch engine(config);

  // add_set(tags, key): key is an opaque link to application data — here,
  // subscriber ids. Changes are staged until consolidate().
  using Tags = std::vector<std::string>;
  engine.add_set(Tags{"sports", "football"}, /*key=*/1);
  engine.add_set(Tags{"sports"}, 2);
  engine.add_set(Tags{"music", "jazz"}, 3);
  engine.add_set(Tags{"sports", "football"}, 4);  // Same interest, another subscriber.
  engine.consolidate();

  // match(q) returns every key whose set is contained in the query tags.
  Tags tweet = {"sports", "football", "worldcup"};
  std::printf("query {sports, football, worldcup} ->");
  for (auto key : engine.match(tweet)) {
    std::printf(" %u", key);
  }
  std::printf("\n");

  // match_unique deduplicates keys (a subscriber with several matching
  // interests is reported once).
  engine.add_set(Tags{"worldcup"}, 1);
  engine.consolidate();
  std::printf("match:        %zu results\n", engine.match(tweet).size());
  std::printf("match_unique: %zu results\n", engine.match_unique(tweet).size());

  // remove_set drops one (set, key) association.
  engine.remove_set(Tags{"sports", "football"}, 4);
  engine.consolidate();
  std::printf("after remove: %zu results\n", engine.match(tweet).size());

  auto stats = engine.stats();
  std::printf("engine: %llu unique sets, %llu partitions, %llu queries processed\n",
              static_cast<unsigned long long>(stats.unique_sets),
              static_cast<unsigned long long>(stats.partitions),
              static_cast<unsigned long long>(stats.queries_processed));
  return 0;
}

// Ad selection (the paper's opening example, §1): "the first stage in ad
// selection for user queries finds a match between user attributes and
// targeting criteria across the corpus of ads" — i.e. select every ad whose
// targeting criteria are a SUBSET of the attributes of the current user
// query.
//
// Ads (targeting tag sets) are the database, keyed by ad id; each incoming
// user query carries attribute tags (demographics, interests, context).
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/tagmatch.h"

namespace {

struct Ad {
  uint32_t id;
  const char* name;
  std::vector<std::string> targeting;
};

}  // namespace

int main() {
  using tagmatch::TagMatch;

  const std::vector<Ad> ads = {
      {100, "RunningShoes", {"age:18-34", "interest:running"}},
      {101, "LuxuryWatches", {"income:high"}},
      {102, "LocalPizza", {"city:belgrade"}},
      {103, "GamingLaptop", {"age:18-34", "interest:gaming", "platform:desktop"}},
      {104, "TravelDeals", {"interest:travel"}},
      {105, "Untargeted", {}},  // Empty criteria: matches every user.
  };

  tagmatch::TagMatchConfig config;
  config.num_gpus = 1;
  config.streams_per_gpu = 2;
  config.num_threads = 2;
  config.gpu_memory_capacity = 128ull << 20;
  TagMatch engine(config);
  for (const Ad& ad : ads) {
    engine.add_set(ad.targeting, ad.id);
  }
  engine.consolidate();

  const std::vector<std::pair<const char*, std::vector<std::string>>> users = {
      {"young runner in Belgrade",
       {"age:18-34", "interest:running", "interest:music", "city:belgrade"}},
      {"wealthy traveller", {"income:high", "interest:travel", "age:35-54"}},
      {"anonymous visitor", {"platform:mobile"}},
  };

  for (const auto& [label, attributes] : users) {
    std::printf("%s ->", label);
    for (auto ad_id : engine.match_unique(attributes)) {
      for (const Ad& ad : ads) {
        if (ad.id == ad_id) {
          std::printf(" %s", ad.name);
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}

// Tag-based publish/subscribe message broker (the paper's §1 also cites
// pub/sub brokering and ICN routing as subset-matching applications).
//
// Subscriptions are tag sets; a published message is delivered to every
// subscriber whose subscription is contained in the message's tags. This
// example demonstrates the asynchronous streaming API with a bounded-latency
// configuration and live subscription changes (add/remove + consolidate).
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/tagmatch.h"

namespace {

using Tags = std::vector<std::string>;

struct Message {
  const char* body;
  Tags tags;
};

}  // namespace

int main() {
  using tagmatch::TagMatch;

  tagmatch::TagMatchConfig config;
  config.num_gpus = 1;
  config.streams_per_gpu = 2;
  config.num_threads = 2;
  config.gpu_memory_capacity = 128ull << 20;
  config.batch_timeout = std::chrono::milliseconds(10);
  TagMatch broker(config);

  // Subscriber 1 wants monitoring alerts from eu-west; 2 wants everything
  // about the billing service; 3 wants critical alerts of any kind.
  broker.add_set(Tags{"alert", "region:eu-west"}, 1);
  broker.add_set(Tags{"service:billing"}, 2);
  broker.add_set(Tags{"alert", "severity:critical"}, 3);
  broker.consolidate();

  const std::vector<Message> stream = {
      {"billing latency high", {"alert", "service:billing", "region:eu-west"}},
      {"disk failing", {"alert", "severity:critical", "host:db-7"}},
      {"deploy finished", {"service:billing", "event:deploy"}},
      {"all quiet", {"heartbeat"}},
  };

  std::atomic<int> pending{0};
  for (const Message& msg : stream) {
    pending++;
    broker.match_async(tagmatch::BloomFilter192::of(msg.tags),
                       TagMatch::MatchKind::kMatchUnique,
                       [body = msg.body, &pending](std::vector<TagMatch::Key> subscribers) {
                         std::printf("deliver '%s' to:", body);
                         if (subscribers.empty()) {
                           std::printf(" (no subscribers)");
                         }
                         for (auto s : subscribers) {
                           std::printf(" subscriber-%u", s);
                         }
                         std::printf("\n");
                         pending--;
                       });
  }
  broker.flush();

  // Subscriber 1 unsubscribes; subscriptions change online and take effect
  // at the next consolidate().
  broker.remove_set(Tags{"alert", "region:eu-west"}, 1);
  broker.consolidate();
  std::printf("after unsubscribe: message 1 reaches %zu subscriber(s)\n",
              broker.match_unique(stream[0].tags).size());
  return pending.load() == 0 ? 0 : 1;
}

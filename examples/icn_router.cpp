// Information-Centric Networking forwarding with TagMatch (the §1/§5
// application from Papalini et al.): the FIB maps tag-set *descriptors* to
// next-hop interfaces; an incoming packet carries a descriptor, and the
// router forwards it on every interface whose FIB descriptor is a subset of
// the packet's — match_unique over interfaces.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/tagmatch.h"

namespace {

struct FibEntry {
  uint32_t interface;  // Next-hop link id (the TagMatch key).
  std::vector<std::string> descriptor;
};

}  // namespace

int main() {
  using tagmatch::TagMatch;
  using Tags = std::vector<std::string>;

  // A small FIB: interfaces announce the content descriptors reachable
  // through them (e.g. learned from routing announcements).
  const std::vector<FibEntry> fib = {
      {1, {"video"}},                       // Interface 1 reaches all video content.
      {1, {"news", "europe"}},              // ... and European news.
      {2, {"video", "sports"}},             // Interface 2: sports video only.
      {3, {"news"}},                        // Interface 3: all news.
      {3, {"sensor", "building:west"}},     // ... and west-building sensors.
      {4, {"sensor"}},                      // Interface 4: every sensor feed.
  };

  tagmatch::TagMatchConfig config;
  config.num_gpus = 1;
  config.streams_per_gpu = 2;
  config.num_threads = 2;
  config.gpu_memory_capacity = 128ull << 20;
  TagMatch router(config);
  for (const FibEntry& e : fib) {
    router.add_set(e.descriptor, e.interface);
  }
  router.consolidate();

  const std::vector<std::pair<const char*, Tags>> packets = {
      {"sports clip", {"video", "sports", "football", "hd"}},
      {"breaking EU news", {"news", "europe", "politics"}},
      {"west sensor reading", {"sensor", "building:west", "temperature"}},
      {"cat picture", {"image", "cats"}},
  };

  for (const auto& [label, descriptor] : packets) {
    auto interfaces = router.match_unique(descriptor);
    std::printf("%-22s ->", label);
    if (interfaces.empty()) {
      std::printf(" drop (no route)");
    }
    for (auto ifc : interfaces) {
      std::printf(" if%u", ifc);
    }
    std::printf("\n");
  }
  return 0;
}

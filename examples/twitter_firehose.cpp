// The paper's motivating application (§1, §2): a Twitter-like messaging
// service where users follow publishers and/or topics expressed as tag sets.
// User preferences are the database; the tweet stream is the query stream;
// match_unique(tweet.tags) yields the set of users to deliver each tweet to.
//
// This example builds a scaled synthetic Twitter workload (same generative
// recipe as the paper's §4.2), streams tweets through the asynchronous
// pipeline, and reports delivery throughput and fan-out.
#include <atomic>
#include <cstdio>

#include "src/common/stats.h"
#include "src/core/tagmatch.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"

int main() {
  using namespace tagmatch;

  // 1. Generate users and their interests.
  workload::WorkloadConfig wconfig;
  wconfig.num_users = 20'000;
  wconfig.num_publishers = 5'000;
  wconfig.vocabulary_size = 10'000;
  workload::TwitterWorkload generator(wconfig);
  auto interests = generator.generate_database();
  std::printf("generated %zu interests for %u users\n", interests.size(), wconfig.num_users);

  // 2. Register every interest: the user id is the key.
  TagMatchConfig config;
  config.num_threads = 2;
  config.max_partition_size = 512;
  config.batch_timeout = std::chrono::milliseconds(50);  // Bound delivery latency.
  TagMatch engine(config);
  for (const auto& interest : interests) {
    engine.add_set(workload::encode_tags(interest.tags), interest.key);
  }
  engine.consolidate();
  auto stats = engine.stats();
  std::printf("consolidated: %llu unique interests in %llu partitions (%.2f s)\n",
              static_cast<unsigned long long>(stats.unique_sets),
              static_cast<unsigned long long>(stats.partitions),
              stats.last_consolidate_seconds);

  // 3. Stream tweets: each tweet's hash-tags are matched against all
  // interests; the callback receives the ids of the users to notify.
  const size_t kTweets = 5'000;
  auto tweets = generator.generate_queries(interests, kTweets, 2, 4);
  std::atomic<uint64_t> deliveries{0};
  std::atomic<uint64_t> max_fanout{0};
  StopWatch watch;
  for (const auto& tweet : tweets) {
    engine.match_async(workload::encode_tags(tweet.tags), TagMatch::MatchKind::kMatchUnique,
                       [&](std::vector<TagMatch::Key> users) {
                         deliveries.fetch_add(users.size(), std::memory_order_relaxed);
                         uint64_t f = users.size();
                         uint64_t cur = max_fanout.load(std::memory_order_relaxed);
                         while (f > cur &&
                                !max_fanout.compare_exchange_weak(cur, f,
                                                                  std::memory_order_relaxed)) {
                         }
                       });
  }
  engine.flush();
  double seconds = watch.elapsed_s();

  std::printf("streamed %zu tweets in %.2f s: %.0f tweets/s\n", kTweets, seconds,
              kTweets / seconds);
  std::printf("deliveries: %llu total (avg fan-out %.1f users/tweet, max %llu)\n",
              static_cast<unsigned long long>(deliveries.load()),
              static_cast<double>(deliveries.load()) / kTweets,
              static_cast<unsigned long long>(max_fanout.load()));
  std::printf("(Twitter's 2015 average was ~6000 tweets/s across the whole platform)\n");
  return 0;
}

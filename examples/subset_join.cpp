// The §2 database application verbatim: a streaming inner join on a subset
// predicate. Table Users(prefs, id) holds user preferences; for each row of
// the Tweets stream, emit the join partners with Users.prefs ⊆
// Tweets.keywords. TagMatch is the join operator: build side = add_set,
// probe side = match_unique.
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/tagmatch.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"

int main() {
  using namespace tagmatch;

  // Build side: Users(prefs, id) — from the synthetic Twitter workload.
  workload::WorkloadConfig wc;
  wc.num_users = 10'000;
  wc.num_publishers = 4'000;
  wc.vocabulary_size = 40'000;
  wc.tag_zipf = 0.8;
  workload::TwitterWorkload generator(wc);
  auto users = generator.generate_database();

  TagMatchConfig config;
  config.num_threads = 2;
  config.max_partition_size = 512;
  TagMatch join_operator(config);
  for (const auto& row : users) {
    join_operator.add_set(workload::encode_tags(row.tags), row.key);
  }
  join_operator.consolidate();
  std::printf("build side: %zu Users rows (%llu unique prefs)\n", users.size(),
              static_cast<unsigned long long>(join_operator.stats().unique_sets));

  // Probe side: the Tweets stream. Each probe emits (tweet, user) join rows.
  auto tweets = generator.generate_queries(users, 20'000, 2, 4);
  std::atomic<uint64_t> join_rows{0};
  std::atomic<uint64_t> max_partners{0};
  StopWatch watch;
  for (size_t tweet_id = 0; tweet_id < tweets.size(); ++tweet_id) {
    join_operator.match_async(
        workload::encode_tags(tweets[tweet_id].tags), TagMatch::MatchKind::kMatchUnique,
        [&join_rows, &max_partners](std::vector<TagMatch::Key> partners) {
          join_rows.fetch_add(partners.size(), std::memory_order_relaxed);
          uint64_t n = partners.size();
          uint64_t cur = max_partners.load(std::memory_order_relaxed);
          while (n > cur &&
                 !max_partners.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
          }
        });
  }
  join_operator.flush();
  double secs = watch.elapsed_s();

  std::printf("probed %zu Tweets rows in %.2f s (%.0f probes/s)\n", tweets.size(), secs,
              tweets.size() / secs);
  std::printf("emitted %llu join rows (%.1f partners/tweet avg, %llu max)\n",
              static_cast<unsigned long long>(join_rows.load()),
              static_cast<double>(join_rows.load()) / static_cast<double>(tweets.size()),
              static_cast<unsigned long long>(max_partners.load()));
  return 0;
}

// A running TagBroker service (src/broker) — the paper's "future work"
// integration: a full tag-based pub/sub messaging layer on top of the
// TagMatch engine, with live subscription churn, background consolidation,
// bounded per-subscriber queues, and concurrent publishers/consumers.
#include <atomic>
#include <cstdio>
#include <thread>

#include "src/broker/broker.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

int main() {
  using namespace tagmatch;
  using broker::Broker;
  using broker::Message;
  using Tags = std::vector<std::string>;

  broker::BrokerConfig config;
  config.engine.num_threads = 2;
  config.engine.num_gpus = 1;
  config.engine.streams_per_gpu = 2;
  config.engine.gpu_memory_capacity = 256ull << 20;
  config.engine.max_partition_size = 256;
  config.consolidate_interval = std::chrono::milliseconds(100);
  Broker broker(config);

  // A fleet of subscribers with topic interests.
  const char* kTopics[] = {"kernel", "storage", "network", "security", "build"};
  std::vector<broker::SubscriberId> subscribers;
  for (int i = 0; i < 40; ++i) {
    auto id = broker.connect();
    broker.subscribe(id, Tags{kTopics[i % 5]});
    if (i % 3 == 0) {
      broker.subscribe(id, Tags{kTopics[(i + 1) % 5], "urgent"});
    }
    subscribers.push_back(id);
  }

  // Consumers drain their queues while publishers are live.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> consumed{0};
  std::vector<std::thread> consumers;
  for (auto id : subscribers) {
    consumers.emplace_back([&, id] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (broker.poll_wait(id, std::chrono::milliseconds(20)).has_value()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (broker.poll(id).has_value()) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Two publisher threads emitting 4000 messages total.
  constexpr int kMessages = 2000;
  StopWatch watch;
  std::vector<std::thread> publishers;
  for (int p = 0; p < 2; ++p) {
    publishers.emplace_back([&, p] {
      Rng rng(1000 + p);
      for (int i = 0; i < kMessages; ++i) {
        Tags tags = {kTopics[rng.below(5)], "build-" + std::to_string(i % 7)};
        if (rng.chance(0.2)) {
          tags.push_back("urgent");
        }
        broker.publish(Message{tags, "msg"});
      }
    });
  }
  for (auto& t : publishers) {
    t.join();
  }
  broker.flush();
  stop = true;
  for (auto& t : consumers) {
    t.join();
  }

  auto stats = broker.stats();
  std::printf("published %llu messages in %.2f s (%.0f msg/s)\n",
              static_cast<unsigned long long>(stats.published), watch.elapsed_s(),
              static_cast<double>(stats.published) / watch.elapsed_s());
  std::printf("deliveries: %llu (consumed %llu, dropped %llu)\n",
              static_cast<unsigned long long>(stats.deliveries),
              static_cast<unsigned long long>(consumed.load()),
              static_cast<unsigned long long>(stats.dropped));
  std::printf("subscribers: %llu, live subscriptions: %llu, consolidations: %llu\n",
              static_cast<unsigned long long>(stats.subscribers),
              static_cast<unsigned long long>(stats.subscriptions),
              static_cast<unsigned long long>(stats.consolidations));
  return consumed.load() == stats.deliveries ? 0 : 1;
}
